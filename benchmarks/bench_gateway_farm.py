"""E16 (section 3.5 scaled out): the gateway farm under open-loop load.

One fault tolerance domain, fronted by a pool of 1/2/4/8 gateways
(:class:`repro.core.GatewayPool`): consistent-hash sharding of the
client population, pool-aware multi-profile IORs, per-gateway admission
windows, and circuit breakers.  The workload is the farm open loop of
``workloads.farm_open_loop`` — every arrival is its own *logical*
client (unique ``uid#incarnation``), 10^5 of them multiplexed over a
handful of client hosts and pooled TCP connections, with the whole
seeded arrival schedule injected through ``Scheduler.post_batch``
cohorts.

Two benches:

* ``test_farm_100k_single_gateway`` — the head-count test: 100 000
  logical clients through one gateway, heavy-tailed (bounded-Pareto)
  arrivals.  Proves the harness sustains the paper's "very large
  numbers of clients" regime in one process: every arrival is served
  or deliberately shed, none lost, and the identity bookkeeping holds
  100 000 distinct client ids over four connections.
* ``test_farm_scaling_curve`` — the capacity curve: the same offered
  load (10 000 arrivals/s for 2 simulated seconds) against pools of
  1, 2, 4 and 8 gateways.  Sustained throughput must grow >= 1.5x
  from 1 to 4 gateways; the shed rate falls as the pool widens.

Farm configuration (established empirically — see PERFORMANCE.md):
the Totem token quota is raised to 64 messages per visit so the ring's
flow control does not bind before the gateways do, and each gateway
runs a tight admission window (8 in flight, queue of 16) so the pool —
not the ring — is the measured bottleneck.
"""

import zlib

import pytest

from repro import (
    FaultToleranceDomain,
    FtClientLayer,
    GatewayPool,
    Orb,
    TotemConfig,
    World,
)

from common import counter_group
from workloads import farm_open_loop, percentiles, write_heavy

POOL_SIZES = (1, 2, 4, 8)
SCALING_ARRIVALS = 20_000
FARM_ARRIVALS = 100_000
HORIZON_S = 2.0          # offered load = arrivals / HORIZON_S per second
CLIENT_HOSTS = 4         # logical clients multiplex over this many hosts
ADMISSION_WINDOW = 8
ADMISSION_QUEUE = 16
TOKEN_QUOTA = 64         # Totem max_messages_per_token for farm runs


def build_farm(world, pool_size):
    domain = FaultToleranceDomain(
        world, "dom", num_hosts=3,
        totem_config=TotemConfig(max_messages_per_token=TOKEN_QUOTA))
    pool = GatewayPool(domain, size=pool_size,
                      admission_window=ADMISSION_WINDOW,
                      admission_queue_limit=ADMISSION_QUEUE)
    domain.await_stable()
    group = counter_group(domain)
    return domain, pool, group


def run_farm(pool_size, arrivals, interarrival="exponential",
             horizon_s=HORIZON_S):
    """Drive ``arrivals`` logical clients at a pool of ``pool_size``
    gateways; return one deterministic row of the scaling curve."""
    world = World(seed=4200 + pool_size)
    domain, pool, group = build_farm(world, pool_size)
    orbs = []
    for i in range(CLIENT_HOSTS):
        host = world.add_host(f"farmhost{i}")
        orbs.append(Orb(world, host, request_timeout=None))

    def make_stub(index):
        uid = f"farm/{index}"
        key = f"{uid}#1"
        # The farm dispatcher's admission-aware pick: exercises the
        # consistent-hash ring, breaker gating and least-connections
        # fallback for every arrival (the data path itself follows the
        # pool-aware IOR profile order below).
        pool.route(key)
        orb = orbs[zlib.crc32(uid.encode("utf-8")) % CLIENT_HOSTS]
        layer = FtClientLayer(orb, client_uid=uid)
        ior = pool.ior_for(group, key)
        return layer.string_to_object(ior.to_string(), group.interface,
                                      multiplexed=True)

    result = farm_open_loop(world, make_stub, arrivals,
                            arrivals / horizon_s, write_heavy, seed=7,
                            interarrival=interarrival)
    world.run(until=world.now + 0.5)
    snapshot = world.metrics.snapshot()

    def count(name):
        data = snapshot.get(name)
        return data["value"] if data else 0

    span = result["span"]
    served = result["served"]
    latency = percentiles(result["latencies"])
    row = {
        "pool_size": pool_size,
        "arrivals": arrivals,
        "served": served,
        "shed": result["shed"],
        "failed": result["failed"],
        "completion_span_s": round(span, 4),
        "sustained_tput_per_s": round(served / span, 1) if span else 0.0,
        "shed_rate": round(result["shed"] / arrivals, 4),
        "unroutable": count("pool.route.unroutable"),
        "unroutable_rate": round(
            count("pool.route.unroutable") / arrivals, 4),
        "route_owner": count("pool.route.owner"),
        "route_reroutes": count("pool.route.reroutes"),
        "route_fallback": count("pool.route.fallback"),
        "breaker_trips": count("pool.breaker.trips"),
        "breaker_closes": count("pool.breaker.closes"),
        "iors_issued": count("pool.ior.issued"),
        "batched_posts": count("sched.post.batched"),
        "batched_deliveries": count("totem.broadcast.batched_deliveries"),
        "logical_clients": sum(
            len(members) for gw in pool.gateways
            for members in gw._conn_members.values()),
        "client_connections": sum(
            gw.stats["clients_connected"] for gw in pool.gateways),
        "lat_p50_s": latency.get("p50", 0.0),
        "lat_p95_s": latency.get("p95", 0.0),
        "lat_p99_s": latency.get("p99", 0.0),
    }
    return row


def test_farm_100k_single_gateway(benchmark):
    row = benchmark.pedantic(
        run_farm, args=(1, FARM_ARRIVALS),
        kwargs={"interarrival": "pareto"}, rounds=1, iterations=1)
    # Conservation: every one of the 10^5 arrivals is either served or
    # deliberately shed by admission control — never silently lost and
    # never failed with anything but the TRANSIENT shed.
    assert row["served"] + row["shed"] == row["arrivals"]
    assert row["failed"] == 0
    assert row["served"] > 1_000
    # Identity multiplexing: 10^5 distinct logical client ids arrive
    # over a handful of pooled TCP connections.
    assert row["logical_clients"] == FARM_ARRIVALS
    assert row["client_connections"] == CLIENT_HOSTS
    # The bulk paths actually carried the load (satellite: post_batch
    # adoption at the arrival injector and the Totem delivery fan-out).
    assert row["batched_posts"] > 0
    assert row["batched_deliveries"] > 0
    benchmark.extra_info.update(row)


def test_farm_scaling_curve(benchmark):
    def run():
        return {k: run_farm(k, SCALING_ARRIVALS) for k in POOL_SIZES}

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, row in curve.items():
        assert row["served"] + row["shed"] == row["arrivals"], k
        assert row["failed"] == 0, k
        assert row["served"] > 0, k
    # The acceptance bar: >= 1.5x sustained throughput at 4 gateways
    # vs 1 under identical offered load.
    tput = {k: curve[k]["sustained_tput_per_s"] for k in POOL_SIZES}
    assert tput[4] >= 1.5 * tput[1], tput
    # Widening the pool monotonically reduces the shed (lost-load) rate.
    assert curve[8]["shed_rate"] < curve[1]["shed_rate"]
    for k, row in curve.items():
        benchmark.extra_info.update(
            {f"k{k}_{field}": row[field]
             for field in ("served", "shed", "shed_rate", "unroutable_rate",
                           "completion_span_s", "sustained_tput_per_s",
                           "lat_p95_s")})
    benchmark.extra_info["speedup_4v1"] = round(tput[4] / tput[1], 3)
    benchmark.extra_info["speedup_8v1"] = round(tput[8] / tput[1], 3)
