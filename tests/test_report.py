"""Tests for the domain status reporting module."""

import pytest

from repro import ReplicationStyle, World
from repro.eternal import domain_report, format_report

from tests.helpers import make_counter_group, make_domain


def test_report_lists_groups_and_gateways(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.3)
    report = domain_report(domain)
    assert report["alive"] and report["stable"]
    names = {g["name"] for g in report["groups"]}
    assert {"Counter", "EternalReplicationManager"} <= names
    counter = next(g for g in report["groups"] if g["name"] == "Counter")
    assert counter["healthy"]
    assert counter["ready_replicas"] == 3
    assert len(report["gateways"]) == 1
    assert report["gateways"][0]["alive"]


def test_report_marks_degraded_groups(world):
    domain = make_domain(world, num_hosts=3)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 1))
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 1.0)
    report = domain_report(domain)
    counter = next(g for g in report["groups"] if g["name"] == "Counter")
    # Only 2 hosts remain for a min of 3: degraded and visible as such.
    assert counter["ready_replicas"] == 2
    assert not counter["healthy"]


def test_report_survives_dead_domain(world):
    domain = make_domain(world, num_hosts=2)
    for host in list(domain.hosts):
        world.faults.crash_now(host.name)
    report = domain_report(domain)
    assert report == {"domain": "dom", "alive": False}
    assert "DOWN" in format_report(report)


def test_format_report_is_readable(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    domain.await_ready(group)
    text = format_report(domain_report(domain))
    assert "domain dom: stable" in text
    assert "Counter" in text
    assert "warm_passive" in text
    assert "gateway dom-gw0:2809 [up]" in text


def test_module_demo_runs():
    from repro.__main__ import main
    assert main([]) == 0
