"""``python -m repro`` — a self-contained demonstration run.

Builds the paper's Figure 3 scenario (unreplicated client, gateway,
actively replicated server), injects a gateway failover, and prints a
domain status report.  Useful as a smoke test of an installation.

``--metrics`` appends the world's metrics registry after the report;
``--metrics-json`` prints the canonical JSON snapshot instead of the
table (byte-identical across runs of the same seed); ``--audit`` runs
the resource-leak audit at quiescence and fails the run on any leak;
``--trace`` enables causal tracing and prints the span tree of every
invocation; ``--trace-json`` prints the Chrome ``trace_event`` JSON
instead (load it in Perfetto / ``about:tracing``, or feed it to
``tools/trace_report.py`` for a critical-path breakdown);
``--series`` arms the time-series registry and prints its canonical
JSON snapshot (per-group/gateway windowed aggregates, see
docs/OBSERVABILITY.md); ``--flight-dump`` arms the flight recorder
and prints its canonical JSON black-box dump after the run.

Two analysis modes skip the demo entirely: ``--lint`` runs the
``reprolint`` determinism linter over ``src/`` (same bar as
``tools/reprolint.py`` and the blocking CI job), and ``--race-sweep``
replays the golden scenarios under permuted same-time tie-break orders
(see docs/STATIC_ANALYSIS.md), failing if any semantic artifact
diverges.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import FaultToleranceDomain, FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import domain_report, format_report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="demonstration run: gateway failover over a "
                    "fault tolerance domain")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry after the report")
    parser.add_argument("--metrics-json", action="store_true",
                        help="print the canonical JSON metrics snapshot")
    parser.add_argument("--audit", action="store_true",
                        help="run the resource-leak audit at quiescence; "
                             "a leak fails the run")
    parser.add_argument("--trace", action="store_true",
                        help="record causal traces and print the span tree")
    parser.add_argument("--trace-json", action="store_true",
                        help="record causal traces and print Chrome "
                             "trace_event JSON (Perfetto-loadable)")
    parser.add_argument("--series", action="store_true",
                        help="arm the time-series registry and print its "
                             "canonical JSON snapshot after the run")
    parser.add_argument("--flight-dump", action="store_true",
                        help="arm the flight recorder and print its "
                             "canonical JSON dump after the run")
    parser.add_argument("--seed", type=int, default=2026,
                        help="world seed (default: 2026)")
    parser.add_argument("--lint", action="store_true",
                        help="run the reprolint determinism linter over "
                             "src/ instead of the demo; extra arguments "
                             "(e.g. --graph-dump FILE, --protocol-dump "
                             "FILE, --budget SECONDS) pass through to it")
    parser.add_argument("--race-sweep", action="store_true",
                        help="replay the golden scenarios under permuted "
                             "tie-break orders instead of the demo")
    args, extra = parser.parse_known_args(argv)
    if args.lint:
        # Unrecognised flags belong to the linter (--graph-dump,
        # --protocol-dump, --budget, paths, ...), not the demo.
        from repro.analysis.cli import main as lint_main
        return lint_main(extra)
    if extra:
        parser.error("unrecognized arguments: " + " ".join(extra))
    if args.race_sweep:
        return _race_sweep()
    tracing = args.trace or args.trace_json
    world = World(seed=args.seed, trace_spans=tracing, series=args.series,
                  flight=args.flight_dump)
    domain = FaultToleranceDomain(world, "demo", num_hosts=3)
    domain.add_gateway(port=2809)
    domain.add_gateway(port=2809)
    group = domain.create_group("Counter", COUNTER_INTERFACE, CounterServant,
                                style=ReplicationStyle.ACTIVE)
    domain.await_stable()

    browser = world.add_host("browser")
    orb = Orb(world, browser, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="demo-client")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)

    print("repro demo: gateway to a fault tolerance domain\n")
    for i in range(3):
        value = world.await_promise(stub.call("increment", 1), timeout=600)
        print(f"  increment -> {value}")

    print("\ncrashing the first gateway; continuing through the second ...")
    world.faults.crash_now(domain.gateways[0].host.name)
    for i in range(2):
        value = world.await_promise(stub.call("increment", 1), timeout=600)
        print(f"  increment -> {value}")
    world.run(until=world.now + 0.5)

    print("\n" + format_report(domain_report(domain)))
    expected = 5
    values = {rm.replicas[group.group_id].servant.count
              for rm in domain.rms.values()
              if group.group_id in rm.replicas}
    ok = values == {expected}
    print(f"\nreplica agreement: {'OK' if ok else 'BROKEN'} (values={values})")
    if args.audit:
        report = world.audit()
        print("\n" + report.render())
        ok = ok and report.ok
    if args.metrics:
        print("\nmetrics registry:")
        print(world.metrics_report())
    if args.metrics_json:
        print(world.metrics_json())
    if args.trace:
        print("\ncausal traces:")
        print(world.trace_tree())
    if args.trace_json:
        print(world.trace_chrome_json())
    if args.series:
        print(world.series_json())
    if args.flight_dump:
        print(world.flight_json())
    return 0 if ok else 1


def _race_sweep() -> int:
    from repro.analysis.race import permutation_sweep
    from repro.analysis.scenarios import GOLDEN_SCENARIOS
    ok = True
    for name, scenario in GOLDEN_SCENARIOS.items():
        report = permutation_sweep(scenario, name=name)
        ok = ok and report.ok
        print(f"{name}: {'OK' if report.ok else 'DIVERGED'}")
        for run in report.runs:
            stats = run.recorder or {}
            line = (f"  {run.label}: collisions={stats.get('cohorts', 0)} "
                    f"multi_lane={stats.get('multi_lane_cohorts', 0)}")
            if run.effort_deltas:
                moved = sorted(
                    series for delta in run.effort_deltas.values()
                    for series in delta)
                line += f" effort_moved={','.join(moved)}"
            print(line)
            for key, note in sorted(run.divergences.items()):
                print(f"    DIVERGED {key}: {note}")
    print("race sweep:", "every semantic artifact byte-identical"
          if ok else "SEMANTIC DIVERGENCE — tie-break order leaked")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
