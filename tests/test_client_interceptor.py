"""Unit-ish tests for the thin client-side interception layer (section 3.5)."""

import pytest

from repro import CommFailure, FtClientLayer, Orb, World
from repro.iiop import (
    ETERNAL_CLIENT_ID_CONTEXT,
    ClientIdContext,
    Ior,
    extract_client_id,
)
from repro.iiop.giop import RequestMessage

from tests.helpers import external_client, make_counter_group, make_domain


def test_layer_assigns_unique_client_uids(world):
    host = world.add_host("c")
    orb = Orb(world, host)
    layer_a = FtClientLayer(orb)
    layer_b = FtClientLayer(orb)
    assert layer_a.client_uid != layer_b.client_uid


def test_stub_requests_carry_client_id_service_context(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    contexts = stub.requester.service_contexts()
    assert len(contexts) == 1
    assert contexts[0].context_id == ETERNAL_CLIENT_ID_CONTEXT
    ctx = ClientIdContext.from_bytes(contexts[0].data)
    assert ctx.client_uid == layer.client_uid
    assert ctx.incarnation == 1


def test_extract_client_id_roundtrip():
    ctx = ClientIdContext("client/x/1", incarnation=3)
    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="op",
                             service_contexts=[ctx.to_service_context()])
    extracted = extract_client_id(request)
    assert extracted == ctx


def test_extract_client_id_absent_for_plain_requests():
    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="op")
    assert extract_client_id(request) is None


def test_malformed_context_treated_as_absent():
    from repro.iiop.giop import ServiceContext
    request = RequestMessage(
        request_id=1, response_expected=True, object_key=b"k", operation="op",
        service_contexts=[ServiceContext(ETERNAL_CLIENT_ID_CONTEXT, b"\x00")])
    assert extract_client_id(request) is None


def test_server_orb_ignores_unknown_service_context(world):
    """The paper's reason for using the service context: a receiving ORB
    that cannot interpret it ignores it.  An enhanced client can thus
    talk to a PLAIN unreplicated server unchanged."""
    from repro.apps import COUNTER_INTERFACE, CounterServant
    server_host = world.add_host("plain-server")
    server_orb = Orb(world, server_host)
    server_orb.listen(9000)
    ior = server_orb.activate_object(CounterServant())
    client_host = world.add_host("client")
    client_orb = Orb(world, client_host)
    layer = FtClientLayer(client_orb)
    stub = layer.string_to_object(ior.to_string(), COUNTER_INTERFACE)
    assert world.await_promise(stub.call("increment", 4)) == 4


def test_requester_rejects_ior_without_profiles(world):
    host = world.add_host("c")
    orb = Orb(world, host)
    layer = FtClientLayer(orb)
    empty = Ior(type_id="IDL:x:1.0", profiles=[])
    from repro.apps import COUNTER_INTERFACE
    with pytest.raises(CommFailure):
        layer.string_to_object(empty, COUNTER_INTERFACE)


def test_restart_bumps_incarnation(world):
    host = world.add_host("c")
    orb = Orb(world, host)
    layer = FtClientLayer(orb)
    reborn = layer.restart()
    assert reborn.client_uid == layer.client_uid
    assert reborn.context.incarnation == 2


def test_restarted_client_is_not_mistaken_for_old_incarnation(world):
    """A restarted client re-sending request id 1 must be executed anew,
    not answered from the old incarnation's cached response."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    ior = domain.ior_for(group).to_string()
    layer = FtClientLayer(orb, client_uid="customer-7")
    stub = layer.string_to_object(ior, group.interface)
    assert world.await_promise(stub.call("increment", 5)) == 5
    # Restart: same uid, new incarnation, request ids start over.
    orb2 = Orb(world, host, request_timeout=None)
    reborn = FtClientLayer(orb2, client_uid="customer-7", incarnation=2)
    stub2 = reborn.string_to_object(ior, group.interface)
    assert world.await_promise(stub2.call("increment", 5)) == 10


def test_failover_stats_track_reissues(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    requester = stub.requester
    sent_before = requester.stats["sent"]
    world.faults.crash_now(domain.gateways[0].host.name)
    world.await_promise(stub.call("increment", 1), timeout=240)
    assert requester.stats["failovers"] >= 1
    assert requester.stats["sent"] > sent_before
