"""Meta-tests keeping the experiment harness and docs in sync.

A reproduction's credibility depends on its index being truthful:
every experiment DESIGN.md promises must have a runnable bench file,
and the tools that group results must know every bench file.
"""

import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = ROOT / "benchmarks"
NON_BENCH = {"common", "workloads", "conftest"}


def bench_stems():
    return {p.stem for p in BENCH_DIR.glob("*.py")} - NON_BENCH


def test_every_design_bench_reference_exists():
    design = (ROOT / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/(bench_[a-z0-9_]+)\.py", design))
    assert referenced, "DESIGN.md lists no benches?"
    missing = {name for name in referenced
               if not (BENCH_DIR / f"{name}.py").exists()}
    assert not missing, f"DESIGN.md references absent benches: {missing}"


def test_every_bench_file_is_indexed_in_design():
    design = (ROOT / "DESIGN.md").read_text()
    unindexed = {stem for stem in bench_stems() if stem not in design}
    assert not unindexed, f"benches missing from DESIGN.md: {unindexed}"


def test_every_bench_file_is_indexed_in_experiments():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    unindexed = {stem for stem in bench_stems() if stem not in experiments}
    assert not unindexed, f"benches missing from EXPERIMENTS.md: {unindexed}"


def test_run_experiments_tool_knows_every_bench():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from run_experiments import EXPERIMENT_OF_FILE
    finally:
        sys.path.pop(0)
    unknown = bench_stems() - set(EXPERIMENT_OF_FILE)
    assert not unknown, f"tools/run_experiments.py missing: {unknown}"


def test_every_example_is_listed_in_readme():
    readme = (ROOT / "README.md").read_text()
    for script in (ROOT / "examples").glob("*.py"):
        assert script.name in readme, f"{script.name} not in README"


def test_public_api_exports_resolve():
    import repro
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    import repro.eternal
    for name in repro.eternal.__all__:
        assert getattr(repro.eternal, name, None) is not None, name
    import repro.core
    for name in repro.core.__all__:
        assert getattr(repro.core, name, None) is not None, name
    import repro.iiop
    for name in repro.iiop.__all__:
        assert getattr(repro.iiop, name, None) is not None, name


def test_every_public_module_has_a_docstring():
    import importlib
    packages = ["repro", "repro.sim", "repro.iiop", "repro.orb",
                "repro.totem", "repro.eternal", "repro.core", "repro.apps"]
    for package_name in packages:
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a docstring"
        package_dir = Path(package.__file__).parent
        for module_path in package_dir.glob("*.py"):
            if module_path.stem.startswith("__"):
                continue
            module = importlib.import_module(
                f"{package_name}.{module_path.stem}")
            assert module.__doc__, f"{module.__name__} lacks a docstring"
