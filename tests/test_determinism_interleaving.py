"""Determinism of interleaved executions across active replicas.

Eternal's consistency argument requires that when several invocations
(and their nested calls) are in flight on the same group concurrently,
every replica observes the *same* interleaving — because suspensions
and resumptions are driven purely by the total order.  These tests
stress that property with servants that record their interleaving.
"""

import pytest

from repro import NestedCall, Servant, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.iiop import TC_LONG, TC_STRING
from repro.orb import Interface, Operation, Param

from tests.helpers import make_domain

RECORDER = Interface("Recorder", [
    Operation("run", [Param("tag", TC_STRING)], TC_STRING),
])

HELPER = Interface("Helper", [
    Operation("bounce", [Param("x", TC_LONG)], TC_LONG),
])


class HelperServant(Servant):
    interface = HELPER

    def bounce(self, x):
        return x + 1


class RecorderServant(Servant):
    """Records begin/resume/end markers for every operation."""

    interface = RECORDER

    def __init__(self):
        self.trace = []

    def run(self, tag):
        self.trace.append(f"{tag}:begin")
        value = yield NestedCall("Helper", "bounce", [1])
        self.trace.append(f"{tag}:mid{value}")
        value = yield NestedCall("Helper", "bounce", [value])
        self.trace.append(f"{tag}:end{value}")
        return tag


def traces(domain, group):
    result = {}
    for host_name, rm in domain.rms.items():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            result[host_name] = list(record.servant.trace)
    return result


def test_concurrent_executions_interleave_identically(world):
    domain = make_domain(world, num_hosts=4)
    domain.create_group("Helper", HELPER, HelperServant)
    group = domain.create_group("Recorder", RECORDER, RecorderServant)
    promises = [group.invoke("run", f"op{i}") for i in range(6)]
    world.run_until_done(promises, timeout=600)
    world.run(until=world.now + 0.5)
    per_replica = traces(domain, group)
    assert len(per_replica) == 3
    reference = next(iter(per_replica.values()))
    # Same events, same order, at every replica.
    for trace in per_replica.values():
        assert trace == reference
    # All six operations ran to completion.
    assert sum(1 for e in reference if e.endswith(":begin")) == 6
    assert sum(1 for e in reference if ":end" in e) == 6


def test_interleaving_is_stable_across_reruns(world):
    def run(seed):
        w = World(seed=seed, trace=False)
        domain = make_domain(w, num_hosts=4)
        domain.create_group("Helper", HELPER, HelperServant)
        group = domain.create_group("Recorder", RECORDER, RecorderServant)
        promises = [group.invoke("run", f"op{i}") for i in range(4)]
        w.run_until_done(promises, timeout=600)
        w.run(until=w.now + 0.5)
        return next(iter(traces(domain, group).values()))

    assert run(5) == run(5)


def test_suspended_execution_does_not_block_other_invocations(world):
    """While one invocation awaits its nested response, later-ordered
    invocations may execute; determinism, not serialisation, is what
    the infrastructure guarantees (DESIGN.md)."""
    domain = make_domain(world, num_hosts=4)
    domain.create_group("Helper", HELPER, HelperServant)
    group = domain.create_group("Recorder", RECORDER, RecorderServant)
    counter = domain.create_group("Side", COUNTER_INTERFACE, CounterServant)
    slow = group.invoke("run", "slow")
    quick = counter.invoke("increment", 1)
    world.run_until_done([slow, quick], timeout=600)
    assert quick.result() == 1
    assert slow.result() == "slow"
