"""Pytest fixtures shared by the whole suite."""

import pytest

from repro import World


@pytest.fixture
def world():
    return World(seed=1234)
