"""Resource-leak audit: declared floors for every stateful collection.

The paper's section 3.4/3.5 analysis is entirely about what per-client
state a gateway must hold and *when it may be discarded*; a gateway
that acquires that state correctly but never reclaims it cannot serve
sustained load.  This module turns the reclamation contract into a
checkable artifact: every stateful collection in a world — the
gateway's pending/cache/cancelled/routing tables, the duplicate
suppressor's expectation and delivered-memory maps, the Replication
Mechanisms' invocation logs, the scheduler's event queue — registers
itself with the world's :class:`AuditScope` together with a **declared
floor**: the size it is allowed to have once the scenario has reached
quiescence.  ``world.audit()`` snapshots every registered collection,
publishes the sizes as ``*.state.*`` gauges in the world's metrics
registry, and reports every collection sitting above its floor as a
leak.

Floors are *declared*, not inferred: a response cache is allowed its
configured capacity, the delivered-memory its remember window, an RM
log one checkpoint interval of suffix — anything beyond the declaration
is state someone forgot to reclaim.  Registrations carry an ``active``
predicate so collections owned by crashed or stopped processes (whose
state is frozen, exactly as a dead processor's memory would be) are
excluded from the check.

The gauges are created lazily, on the first ``audit()`` call, so
worlds that never audit produce byte-identical metrics snapshots to
pre-audit builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from ..errors import AuditError

SizeFn = Callable[[], int]
FloorFn = Callable[[], int]
ActiveFn = Callable[[], bool]


@dataclass
class AuditEntry:
    """One registered stateful collection and its reclamation contract."""

    name: str                      # collection name, e.g. "gateway.pending"
    owner: str                     # owning component, e.g. "gateway@dom-gw0:2809"
    size_fn: SizeFn
    floor_fn: Optional[FloorFn]    # None: snapshot-only, never a violation
    active_fn: ActiveFn
    gauge: Optional[str] = None    # metrics gauge fed by this entry's size


@dataclass
class AuditRow:
    """One entry's measurement at audit time."""

    name: str
    owner: str
    size: int
    floor: Optional[int]           # None: snapshot-only entry
    active: bool

    @property
    def ok(self) -> bool:
        return (not self.active or self.floor is None
                or self.size <= self.floor)

    def describe(self) -> str:
        floor = "-" if self.floor is None else str(self.floor)
        state = "ok" if self.ok else "LEAK"
        if not self.active:
            state = "skipped (inactive)"
        return (f"{self.name:<28} {self.owner:<28} size={self.size:<8} "
                f"floor={floor:<8} {state}")


class AuditReport:
    """The outcome of one ``AuditScope.audit()`` pass."""

    def __init__(self, rows: List[AuditRow], at: float) -> None:
        self.rows = rows
        self.at = at

    @property
    def violations(self) -> List[AuditRow]:
        return [row for row in self.rows if not row.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> "AuditReport":
        """Raise :class:`~repro.errors.AuditError` on any leak."""
        bad = self.violations
        if bad:
            detail = "; ".join(
                f"{row.owner}/{row.name} size={row.size} > floor={row.floor}"
                for row in bad)
            raise AuditError(
                f"{len(bad)} collection(s) above declared floor at "
                f"t={self.at:.6f}: {detail}")
        return self

    def render(self) -> str:
        lines = [f"resource audit at t={self.at:.6f}: "
                 f"{len(self.rows)} collections, "
                 f"{len(self.violations)} leak(s)"]
        lines.extend(row.describe() for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class AuditScope:
    """Registry of stateful collections with declared quiescence floors.

    One scope per :class:`~repro.sim.world.World` (``world.audit_scope``),
    shared the same way the metrics registry is: components register
    their collections at construction and the scope outlives them (dead
    owners are skipped via their ``active`` predicate, mirroring a
    crashed processor's frozen memory).
    """

    def __init__(self, metrics: Any = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._metrics = metrics
        self._clock = clock or (lambda: 0.0)
        self._entries: List[AuditEntry] = []

    def register(self, name: str, size_fn: SizeFn,
                 floor: Union[int, FloorFn, None] = 0,
                 owner: str = "", active: Optional[ActiveFn] = None,
                 gauge: Optional[str] = None) -> AuditEntry:
        """Register one collection.

        ``floor`` is the size the collection may legitimately hold at
        quiescence: an int, a callable for floors that depend on live
        state (open connections, configured capacities), or None for
        snapshot-only entries that feed gauges but are never leaks.
        """
        if isinstance(floor, int):
            floor_value = floor
            floor_fn: Optional[FloorFn] = lambda: floor_value
        else:
            floor_fn = floor
        entry = AuditEntry(name=name, owner=owner, size_fn=size_fn,
                           floor_fn=floor_fn,
                           active_fn=active or (lambda: True),
                           gauge=gauge)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def audit(self) -> AuditReport:
        """Snapshot every registered collection and check floors.

        Gauge series named by registrations are summed over *active*
        entries and published to the metrics registry (created on first
        audit, so never-audited worlds keep pre-audit snapshots).
        """
        rows: List[AuditRow] = []
        gauge_totals: Dict[str, int] = {}
        for entry in self._entries:
            active = bool(entry.active_fn())
            size = int(entry.size_fn())
            floor = (None if entry.floor_fn is None
                     else int(entry.floor_fn()))
            rows.append(AuditRow(name=entry.name, owner=entry.owner,
                                 size=size, floor=floor, active=active))
            if entry.gauge is not None and active:
                gauge_totals[entry.gauge] = (
                    gauge_totals.get(entry.gauge, 0) + size)
        if self._metrics is not None:
            for gauge_name, total in sorted(gauge_totals.items()):
                self._metrics.gauge(gauge_name).set(total)
        return AuditReport(rows, at=self._clock())
