#!/usr/bin/env python
"""Perf-regression gate: run the hot-path benchmarks and compare means
against the committed ``BENCH_BASELINE.json``.

Usage::

    python tools/bench_compare.py [--baseline BENCH_BASELINE.json]
                                  [--threshold 0.20] [--update-baseline]

The script

* runs ``benchmarks/bench_totem_ring.py``,
  ``benchmarks/bench_gateway_scaling.py``,
  ``benchmarks/bench_scheduler_throughput.py``,
  ``benchmarks/bench_gateway_farm.py`` and
  ``benchmarks/bench_replication_styles.py`` under pytest-benchmark,
* writes the dated raw results plus the comparison to
  ``BENCH_<YYYY-MM-DD>.json`` in the repository root,
* reports the headline speedup of each benchmark against the recorded
  pre-overhaul means (``pre_pr_mean_s``),
* **fails (exit 1)** when any benchmark's wall-clock mean regresses more
  than ``--threshold`` (default 20%; the sim-kernel microbenches use a
  tighter fixed 15%) over the committed ``mean_s``, or when any
  simulated-time scalar in ``extra_info`` (latencies, completion times,
  delivery counts — everything the discrete-event simulation fully
  determines) differs from the baseline.  Simulated numbers are
  deterministic, so *any* drift there is a semantic change, not noise.
  With ``--gate-scheduler-only`` (the CI mode) only scheduler-bench
  failures block; end-to-end regressions print as advisory.

Wall-clock numbers depend on the machine; refresh the baseline on the
reference runner with ``--update-baseline`` (this preserves the
recorded ``pre_pr_mean_s`` values so the headline speedup stays
anchored to the pre-overhaul measurement).

``--trace-overhead`` runs a separate mode instead: the gateway-scaling
workload with causal tracing off and on, reporting the wall-clock cost
of the instrumentation and verifying that the *simulated* results are
identical either way (tracing must never perturb the discrete-event
schedule).

``--series-overhead`` is the analogous mode for the time-series
registry (``repro.obs.series``): same workload with the registry off
and on, verifying identical simulated rows (event series add no
scheduler events), gating the series-*disabled* wall-clock at 1.05x
of the committed baseline minimum (the laziness contract: a disabled
registry costs one attribute load and one boolean test per hook), and
publishing per-group latency/shed aggregates from the enabled run to
the CI job summary.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILES = [
    "benchmarks/bench_totem_ring.py",
    "benchmarks/bench_gateway_scaling.py",
    "benchmarks/bench_scheduler_throughput.py",
    "benchmarks/bench_gateway_farm.py",
    "benchmarks/bench_replication_styles.py",
]
FARM_BENCH_PREFIX = "test_farm_"
FARM_CURVE_PATH = "FARM_CURVE.json"
STYLE_BENCH_PREFIX = "test_styles_"
STYLE_COMPARISON_PATH = "STYLE_COMPARISON.json"
# extra_info keys that legitimately vary with implementation details
# (event counts), depend on wall-clock (throughput rates), or hold
# nested blobs rather than simulated scalars.
EXTRA_INFO_IGNORED = {"metrics", "events_processed", "events_per_sec",
                      "reference_events_per_sec", "speedup_vs_reference"}
# The sim-kernel microbenches gate *blocking* in CI at a tighter
# threshold (the kernel is the multiplier under every other number);
# the end-to-end benches stay advisory there.
SCHEDULER_BENCH_PREFIX = "test_sched_"
SCHEDULER_THRESHOLD = 0.15


def run_benchmarks() -> dict:
    """Run the benchmark suite; return the pytest-benchmark JSON doc."""
    with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False, mode="w") as tmp:
        out_path = tmp.name
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p)
    cmd = [sys.executable, "-m", "pytest", *BENCH_FILES,
           "-p", "no:cacheprovider", "-q",
           f"--benchmark-json={out_path}"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        print(f"benchmark run failed (pytest exit {proc.returncode})")
        sys.exit(proc.returncode)
    with open(out_path) as f:
        doc = json.load(f)
    os.unlink(out_path)
    return doc


def scalar_extra_info(bench: dict) -> dict:
    return {k: v for k, v in bench.get("extra_info", {}).items()
            if k not in EXTRA_INFO_IGNORED}


def bench_threshold(name: str, default: float) -> float:
    """Scheduler microbenches use their own (tighter) gate threshold."""
    if name.startswith(SCHEDULER_BENCH_PREFIX):
        return SCHEDULER_THRESHOLD
    return default


def compare(baseline: dict, fresh: dict, threshold: float) -> dict:
    """Build the comparison report; report['failures'] drives the gate.

    Each failure is a ``(name, message)`` pair so callers can split the
    blocking scheduler-bench failures from advisory end-to-end ones.
    """
    fresh_by_name = {b["name"]: b for b in fresh["benchmarks"]}
    rows, failures = [], []
    for name, ref in sorted(baseline["benchmarks"].items()):
        cur = fresh_by_name.get(name)
        if cur is None:
            failures.append((name, f"{name}: benchmark missing from run"))
            continue
        mean = cur["stats"]["mean"]
        best = cur["stats"]["min"]
        # Gate on the *min*: the discrete-event workload is fixed, so
        # the minimum is the least noise-contaminated wall-clock sample;
        # means of the sub-millisecond benches swing >20% run to run.
        gate_ref = ref.get("min_s", ref["mean_s"])
        ratio = best / gate_ref if gate_ref else float("inf")
        row = {
            "name": name,
            "mean_s": mean,
            "min_s": best,
            "baseline_mean_s": ref["mean_s"],
            "baseline_min_s": gate_ref,
            "ratio_vs_baseline": ratio,
        }
        if "pre_pr_mean_s" in ref:
            row["speedup_vs_pre_pr"] = ref["pre_pr_mean_s"] / mean
        limit = bench_threshold(name, threshold)
        if ratio > 1.0 + limit:
            failures.append((name,
                f"{name}: wall-clock regression {ratio:.2f}x over baseline "
                f"min ({gate_ref * 1000:.2f}ms -> {best * 1000:.2f}ms, "
                f"allowed {1.0 + limit:.2f}x)"))
        extra = scalar_extra_info(cur)
        if extra != ref.get("extra_info", {}):
            failures.append((name,
                f"{name}: simulated extra_info drifted "
                f"(expected {ref.get('extra_info')}, got {extra})"))
        rows.append(row)
    for name in sorted(set(fresh_by_name) - set(baseline["benchmarks"])):
        rows.append({
            "name": name,
            "mean_s": fresh_by_name[name]["stats"]["mean"],
            "baseline_mean_s": None,
            "note": "not in baseline",
        })
    return {"rows": rows, "failures": failures}


def write_job_summary(fresh: dict) -> None:
    """Publish kernel throughput to the CI job summary (and stdout).

    One line per scheduler microbench: events/sec on the calendar
    kernel and the measured speedup over the pre-overhaul heap.
    """
    lines = []
    for bench in fresh["benchmarks"]:
        if not bench["name"].startswith(SCHEDULER_BENCH_PREFIX):
            continue
        info = bench.get("extra_info", {})
        if "events_per_sec" not in info:
            continue
        lines.append(
            f"{bench['name']}: {info['events_per_sec']:,} events/sec "
            f"({info.get('speedup_vs_reference', '?')}x vs pre-overhaul "
            f"heap)")
    if not lines:
        return
    print("\nscheduler throughput:")
    for line in lines:
        print(f"  {line}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write("### Sim-kernel throughput\n\n")
            for line in lines:
                f.write(f"- {line}\n")


def write_farm_summary(fresh: dict) -> None:
    """Publish the gateway-farm scaling curve.

    Renders the per-pool-size curve from ``test_farm_scaling_curve``
    (sustained throughput, shed/unroutable rates, p95 latency) as a
    table on stdout and in the CI job summary, and writes the full farm
    rows to ``FARM_CURVE.json`` for upload as an advisory artifact.
    """
    farm = {b["name"]: b.get("extra_info", {})
            for b in fresh["benchmarks"]
            if b["name"].startswith(FARM_BENCH_PREFIX)}
    if not farm:
        return
    curve_info = next((info for name, info in farm.items()
                       if "speedup_4v1" in info), {})
    sizes = sorted({int(key[1:key.index("_")])
                    for key in curve_info if key.startswith("k")
                    and key[1:key.index("_")].isdigit()})
    header = ("| gateways | sustained req/s | shed rate | unroutable rate "
              "| p95 latency (s) |")
    rule = "|---:|---:|---:|---:|---:|"
    lines = [header, rule]
    for k in sizes:
        lines.append(
            f"| {k} | {curve_info.get(f'k{k}_sustained_tput_per_s', '?')} "
            f"| {curve_info.get(f'k{k}_shed_rate', '?')} "
            f"| {curve_info.get(f'k{k}_unroutable_rate', '?')} "
            f"| {curve_info.get(f'k{k}_lat_p95_s', '?')} |")
    speedup = (f"throughput speedup: "
               f"{curve_info.get('speedup_4v1', '?')}x at 4 gateways, "
               f"{curve_info.get('speedup_8v1', '?')}x at 8 (vs 1)")
    print("\ngateway-farm scaling curve:")
    for line in lines:
        print(f"  {line}")
    print(f"  {speedup}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write("### Gateway-farm scaling curve\n\n")
            for line in lines:
                f.write(f"{line}\n")
            f.write(f"\n{speedup}\n")
    curve_path = os.path.join(REPO_ROOT, FARM_CURVE_PATH)
    with open(curve_path, "w") as f:
        json.dump({"benchmarks": farm}, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {curve_path}")


def write_styles_summary(fresh: dict) -> None:
    """Publish the replication-style comparison (E9/E17).

    Renders the per-style trade-off table from
    ``test_styles_comparison_table`` (broadcasts and executions per
    operation, failover latency, replayed operations) plus the E17
    leader-follower vs voting latency headline on stdout and in the CI
    job summary, and writes every ``test_styles_*`` bench's rows to
    ``STYLE_COMPARISON.json`` for upload as an advisory artifact.
    """
    styles = {b["name"]: b.get("extra_info", {})
              for b in fresh["benchmarks"]
              if b["name"].startswith(STYLE_BENCH_PREFIX)}
    if not styles:
        return
    table_info = styles.get("test_styles_comparison_table", {})
    style_rows = {name: row for name, row in table_info.items()
                  if isinstance(row, dict) and "broadcasts_per_op" in row}
    lines = []
    if style_rows:
        lines.append("| style | broadcasts/op | executions/op "
                     "| failover (s) | replayed ops |")
        lines.append("|---|---:|---:|---:|---:|")
        for name in sorted(style_rows):
            row = style_rows[name]
            lines.append(
                f"| {name} | {row.get('broadcasts_per_op', '?')} "
                f"| {row.get('executions_per_op', '?')} "
                f"| {row.get('failover_latency_s', '?')} "
                f"| {row.get('replayed_ops', '?')} |")
    latency = styles.get("test_styles_lf_vs_voting_latency", {})
    headline = None
    if "lf_p50_latency_s" in latency:
        headline = (
            f"leader-follower p50 {latency['lf_p50_latency_s']}s vs "
            f"active-with-voting {latency['voting_p50_latency_s']}s "
            f"({latency.get('p50_speedup', '?')}x)")
    if lines or headline:
        print("\nreplication-style comparison:")
        for line in lines:
            print(f"  {line}")
        if headline:
            print(f"  {headline}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write("### Replication-style comparison\n\n")
            for line in lines:
                f.write(f"{line}\n")
            if headline:
                f.write(f"\n{headline}\n")
    comparison_path = os.path.join(REPO_ROOT, STYLE_COMPARISON_PATH)
    with open(comparison_path, "w") as f:
        json.dump({"benchmarks": styles}, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {comparison_path}")


def trace_overhead(rounds: int) -> int:
    """Measure causal-tracing overhead on the gateway-scaling workload.

    For each client count, times ``run_clients`` with tracing disabled
    and enabled (best of ``rounds``), and checks the simulated result
    rows are identical — the tracing hooks observe the schedule, they
    must never change it.
    """
    import time as _time
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    from bench_gateway_scaling import run_clients  # noqa: E402

    failures = []
    print(f"{'clients':>7} {'off ms':>9} {'on ms':>9} {'overhead':>9}")
    for clients in (1, 2, 4, 8):
        timings = {}
        for traced in (False, True):
            best, row = None, None
            for _ in range(rounds):
                t0 = _time.perf_counter()
                row = run_clients(clients, trace_spans=traced)
                dt = _time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
            timings[traced] = (best, row)
        (off_s, off_row), (on_s, on_row) = timings[False], timings[True]
        if off_row != on_row:
            failures.append(f"{clients} clients: simulated results differ "
                            f"with tracing on ({off_row} vs {on_row})")
        ratio = on_s / off_s if off_s else float("inf")
        print(f"{clients:>7} {off_s * 1000:>9.2f} {on_s * 1000:>9.2f} "
              f"{ratio:>8.2f}x")
    if failures:
        print("\nTRACING PERTURBED THE SIMULATION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nsimulated results identical with tracing on and off")
    return 0


SERIES_DISABLED_LIMIT = 1.05


def _series_summary_lines(clients: int, snapshot: dict) -> list:
    """Markdown table of the enabled run's windowed aggregates."""
    lines = [f"series aggregates at {clients} clients "
             f"(t={snapshot['t']:.4f}s, window {snapshot['window_s']}s):",
             "| series | count | last | rate/s | ewma | p95 |",
             "|---|---:|---:|---:|---:|---:|"]
    for key, row in sorted(snapshot["series"].items()):
        def fmt(value):
            return "-" if value is None else f"{value:.4f}"
        lines.append(
            f"| `{key}` | {row['count']} | {fmt(row['last'])} "
            f"| {fmt(row['rate'])} | {fmt(row['ewma'])} "
            f"| {fmt(row['p95'])} |")
    return lines


def series_overhead(rounds: int, baseline_path: str) -> int:
    """Measure time-series overhead on the gateway-scaling workload.

    For each client count, times ``run_clients`` with the series
    registry disabled and enabled (best of ``rounds``) and checks

    * the simulated result rows are identical either way — the
      gateway's event series observe the schedule without adding
      events to it;
    * the series-*disabled* wall-clock stays within
      ``SERIES_DISABLED_LIMIT`` (1.05x) of the committed baseline
      minimum for the same client count, so the always-present lazy
      hooks (one attribute load + one boolean test per shed/latency
      site) stay free when the feature is off.
    """
    import time as _time
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    from bench_gateway_scaling import run_clients  # noqa: E402

    with open(baseline_path) as f:
        baseline = json.load(f)["benchmarks"]

    failures = []
    summary = None
    print(f"{'clients':>7} {'off ms':>9} {'on ms':>9} {'overhead':>9} "
          f"{'vs base':>9}")
    for clients in (1, 2, 4, 8):
        timings = {}
        for enabled in (False, True):
            best, row = None, None
            for _ in range(rounds):
                t0 = _time.perf_counter()
                row = run_clients(clients, series=enabled)
                dt = _time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
            timings[enabled] = (best, row)
        (off_s, off_row), (on_s, on_row) = timings[False], timings[True]
        if off_row != on_row:
            failures.append(f"{clients} clients: simulated results differ "
                            f"with series on ({off_row} vs {on_row})")
        snapshot = getattr(run_clients, "last_series", None)
        if snapshot and snapshot.get("series"):
            summary = _series_summary_lines(clients, snapshot)
        ref = baseline.get(f"test_gateway_scaling_clients[{clients}]", {})
        gate_ref = ref.get("min_s", ref.get("mean_s"))
        base_ratio = off_s / gate_ref if gate_ref else None
        if base_ratio is not None and base_ratio > SERIES_DISABLED_LIMIT:
            failures.append(
                f"{clients} clients: series-disabled wall-clock "
                f"{base_ratio:.3f}x over baseline min "
                f"({gate_ref * 1000:.2f}ms -> {off_s * 1000:.2f}ms, "
                f"allowed {SERIES_DISABLED_LIMIT:.2f}x)")
        ratio = on_s / off_s if off_s else float("inf")
        base_text = (f"{base_ratio:>8.2f}x" if base_ratio is not None
                     else f"{'n/a':>9}")
        print(f"{clients:>7} {off_s * 1000:>9.2f} {on_s * 1000:>9.2f} "
              f"{ratio:>8.2f}x {base_text}")

    if summary:
        print()
        for line in summary:
            print(f"  {line}")
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a") as f:
                f.write("### Time-series overhead\n\n")
                for line in summary:
                    f.write(f"{line}\n")
    if failures:
        print("\nSERIES OVERHEAD GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nsimulated results identical with series on and off; "
          "disabled wall-clock within gate")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default=os.path.join(REPO_ROOT, "BENCH_BASELINE.json"))
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional wall-clock regression "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline means from this run "
                             "(keeps pre_pr_mean_s anchors)")
    parser.add_argument("--gate-scheduler-only", action="store_true",
                        help="exit non-zero only for scheduler-microbench "
                             "failures; end-to-end bench regressions are "
                             "reported as advisory (the CI mode)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="measure causal-tracing overhead on the "
                             "gateway-scaling workload instead of running "
                             "the regression gate")
    parser.add_argument("--series-overhead", action="store_true",
                        help="measure time-series registry overhead on the "
                             "gateway-scaling workload (identical-rows check "
                             "plus the 1.05x disabled-cost gate) instead of "
                             "running the regression gate")
    parser.add_argument("--rounds", type=int, default=3,
                        help="repeats per measurement in --trace-overhead / "
                             "--series-overhead modes (default 3; best-of "
                             "wins)")
    args = parser.parse_args()

    if args.trace_overhead:
        return trace_overhead(args.rounds)
    if args.series_overhead:
        return series_overhead(args.rounds, args.baseline)

    with open(args.baseline) as f:
        baseline = json.load(f)
    fresh = run_benchmarks()
    report = compare(baseline, fresh, args.threshold)

    today = datetime.date.today().isoformat()
    dated_path = os.path.join(REPO_ROOT, f"BENCH_{today}.json")
    with open(dated_path, "w") as f:
        json.dump({"date": today, "comparison": report,
                   "raw": fresh}, f, indent=1, sort_keys=True)
    print(f"\nwrote {dated_path}")

    for row in report["rows"]:
        if row.get("baseline_mean_s") is None:
            continue
        speed = row.get("speedup_vs_pre_pr")
        headline = f"  {row['ratio_vs_baseline']:5.2f}x vs baseline"
        if speed is not None:
            headline += f", {speed:5.2f}x vs pre-overhaul"
        print(f"{row['name']:55s}{headline}")

    if args.update_baseline:
        for b in fresh["benchmarks"]:
            entry = baseline["benchmarks"].setdefault(b["name"], {})
            entry["mean_s"] = b["stats"]["mean"]
            entry["min_s"] = b["stats"]["min"]
            entry["extra_info"] = scalar_extra_info(b)
        baseline["captured"] = today
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    write_job_summary(fresh)
    write_farm_summary(fresh)
    write_styles_summary(fresh)

    blocking = report["failures"]
    advisory = []
    if args.gate_scheduler_only:
        blocking = [(n, m) for n, m in report["failures"]
                    if n.startswith(SCHEDULER_BENCH_PREFIX)]
        advisory = [(n, m) for n, m in report["failures"]
                    if not n.startswith(SCHEDULER_BENCH_PREFIX)]
    if advisory:
        print("\nadvisory (non-blocking) regressions:")
        for _, failure in advisory:
            print(f"  - {failure}")
    if blocking:
        print("\nREGRESSIONS DETECTED:")
        for _, failure in blocking:
            print(f"  - {failure}")
        return 1
    print("\nno blocking regressions: wall-clock within thresholds, "
          "simulated numbers identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
