"""Fault tolerance domain orchestration.

A :class:`FaultToleranceDomain` is "the domain of control of the fault
tolerance infrastructure" (paper section 1): a set of processors that
run Totem and the Eternal Replication Mechanisms, the replicated
manager objects, zero or more gateways on its edge, and the replicated
application groups inside.

The domain object is deliberately the *only* piece of the reproduction
that knows how everything is wired; tests, examples and benchmarks
build domains and then talk CORBA.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError, TransientError
from ..iiop.ior import Ior
from ..orb.idl import Interface
from ..orb.servant import Servant
from ..sim.host import Host
from ..sim.world import Promise, World
from ..totem.member import TotemConfig, TotemMember
from ..totem.transport import TotemTransport
from .egress import DomainEgress
from .fault_detector import FaultDetector
from .interceptor import EternalInterceptor
from .managers import (
    EvolutionManager,
    REPLICATION_MANAGER_INTERFACE,
    ReplicationManagerServant,
    ResourceManager,
    StyleManager,
)
from .messages import DomainMessage, MsgKind
from .naming import (
    FIRST_APPLICATION_GROUP,
    GATEWAY_GROUP,
    REPLICATION_MANAGER_GROUP,
)
from .properties import FaultToleranceProperties
from .registry import GroupInfo
from .replication import ReplicationMechanisms
from .styles import ReplicationStyle, StylePolicy

REPLICATION_MANAGER_FACTORY = "eternal.replication_manager"


class GroupHandle:
    """Convenience handle for one replicated object group."""

    def __init__(self, domain: "FaultToleranceDomain", group_id: int,
                 name: str, interface: Interface) -> None:
        self.domain = domain
        self.group_id = group_id
        self.name = name
        self.interface = interface

    def invoke(self, operation: str, *args: Any) -> Promise:
        return self.domain.invoke(self, operation, list(args))

    def ior(self, first_gateway_only: bool = False) -> Ior:
        return self.domain.ior_for(self, first_gateway_only=first_gateway_only)

    def info(self) -> Optional[GroupInfo]:
        return self.domain.coordinator_rm().registry.get(self.group_id)

    def is_ready(self) -> bool:
        """True when every placed replica reports installed state."""
        info = self.info()
        if info is None or not info.placement:
            return False
        for host_name in info.placement:
            rm = self.domain.rms.get(host_name)
            if rm is None or not rm.alive:
                return False
            record = rm.replicas.get(self.group_id)
            if record is None or not record.ready:
                return False
        return True

    def __repr__(self) -> str:
        return f"<GroupHandle {self.name} gid={self.group_id}>"


class FaultToleranceDomain:
    """One fault tolerance domain: hosts, Totem ring, RMs, gateways."""

    def __init__(
        self,
        world: World,
        name: str,
        num_hosts: int = 3,
        totem_config: Optional[TotemConfig] = None,
        site: Optional[str] = None,
    ) -> None:
        self.world = world
        self.name = name
        self.site = site or name
        self.totem_config = totem_config or TotemConfig()
        self.transport = TotemTransport(world.network, name)
        self.interfaces: Dict[str, Interface] = {}
        self.factories: Dict[str, Callable[..., Servant]] = {}
        self.hosts: List[Host] = []
        self.members: Dict[str, TotemMember] = {}
        self.rms: Dict[str, ReplicationMechanisms] = {}
        self.egresses: Dict[str, DomainEgress] = {}
        self.resource_managers: Dict[str, ResourceManager] = {}
        self.fault_detectors: Dict[str, FaultDetector] = {}
        self.gateways: List[Any] = []          # repro.core.gateway.Gateway
        self.replica_host_names: List[str] = []
        self.interceptor = EternalInterceptor(self)
        self.evolution = EvolutionManager(self)
        self._next_gid = itertools.count(FIRST_APPLICATION_GROUP)
        self._invoke_seq = itertools.count(1)
        self._handles: Dict[int, GroupHandle] = {}
        self._naming: Optional[GroupHandle] = None

        self.register_interface(REPLICATION_MANAGER_INTERFACE)
        self.register_factory(REPLICATION_MANAGER_FACTORY,
                              self._make_replication_manager)

        self._bootstrapped = False
        for i in range(num_hosts):
            self._add_processor(f"{name}-h{i}", replica_host=True)
        self._bootstrap_managers()
        self._bootstrapped = True

    # ==================================================================
    # Construction
    # ==================================================================

    def _add_processor(self, host_name: str, replica_host: bool) -> Host:
        host = self.world.add_host(host_name, site=self.site)
        member = TotemMember(host, host_name, self.transport,
                             config=self.totem_config,
                             tracer=self.world.tracer)
        # Processors added after bootstrap join a running domain and must
        # receive the directory snapshot before acting on deliveries.
        rm = ReplicationMechanisms(
            host, member, self.name, self.interfaces, self.factories,
            tracer=self.world.tracer, synced=not self._bootstrapped)
        DomainEgress(rm, self.world.tcp)
        self.egresses[host_name] = rm._egress
        self.hosts.append(host)
        self.members[host_name] = member
        self.rms[host_name] = rm
        if replica_host:
            self.replica_host_names.append(host_name)
            # The live list object is shared so later-added replica hosts
            # become replacement candidates everywhere.
            self.resource_managers[host_name] = ResourceManager(
                rm, self.replica_host_names)
            self.fault_detectors[host_name] = FaultDetector(rm)
        member.start()
        return host

    def _bootstrap_managers(self) -> None:
        placement = tuple(self.replica_host_names[:3])
        info = GroupInfo(
            group_id=REPLICATION_MANAGER_GROUP,
            name="EternalReplicationManager",
            interface_name=REPLICATION_MANAGER_INTERFACE.name,
            factory_name=REPLICATION_MANAGER_FACTORY,
            style=ReplicationStyle.ACTIVE,
            placement=placement,
            min_replicas=min(2, len(placement)),
        )
        self._announce(info)

    def _make_replication_manager(self, rm: ReplicationMechanisms) -> Servant:
        return ReplicationManagerServant(
            rm, self._build_ior_string, self.replica_host_names)

    def _build_ior_string(self, group_id: int, interface_name: str) -> str:
        interface = self.interfaces.get(interface_name)
        type_id = interface.repo_id if interface else f"IDL:repro/{interface_name}:1.0"
        if not self.gateways:
            # A domain without gateways publishes a reference that only
            # in-domain callers can use; encode it with a placeholder
            # endpoint so the group id still travels in the object key.
            from ..iiop.ior import stitch_profiles
            from .naming import make_object_key
            return stitch_profiles(type_id, [("unroutable", 0)],
                                   make_object_key(self.name, group_id)
                                   ).to_string()
        return self.interceptor.published_ior(group_id, type_id).to_string()

    # ==================================================================
    # Public configuration API
    # ==================================================================

    def register_interface(self, interface: Interface) -> None:
        self.interfaces[interface.name] = interface

    def register_factory(self, name: str,
                         factory: Callable[..., Servant]) -> None:
        self.factories[name] = factory

    def enable_naming(self, num_replicas: int = 3) -> GroupHandle:
        """Create the replicated Naming Service for this domain.

        Once enabled, every group created afterwards (and every group
        already known) is bound under its name, so external clients can
        bootstrap from the naming service's IOR alone.
        """
        from ..apps.naming import NAMING_INTERFACE, NamingServant
        if self._naming is not None:
            return self._naming
        self._naming = self.create_group(
            "EternalNaming", NAMING_INTERFACE, NamingServant,
            style=ReplicationStyle.ACTIVE,
            num_replicas=min(num_replicas, len(self.replica_host_names)))
        for handle in list(self._handles.values()):
            if handle is not self._naming:
                self._bind_name(handle)
        return self._naming

    def _bind_name(self, handle: GroupHandle) -> None:
        if self._naming is None or handle is self._naming:
            return
        if not self.gateways:
            return  # nothing externally resolvable to bind yet
        self.invoke(self._naming, "rebind",
                    [handle.name, self.ior_for(handle).to_string()])

    def add_gateway(self, port: int = 2809, mirror_requests: bool = True,
                    host_name: Optional[str] = None,
                    **gateway_kwargs: Any) -> Any:
        """Add a gateway processor on the domain's edge (section 3).

        ``gateway_kwargs`` pass through to :class:`repro.core.gateway.
        Gateway` (admission window/queue limits, TTLs, cache size) —
        the gateway-pool seam.
        """
        from ..core.gateway import Gateway  # local import: layering
        host_name = host_name or f"{self.name}-gw{len(self.gateways)}"
        host = self._add_processor(host_name, replica_host=False)
        gateway = Gateway(self, host, port, mirror_requests=mirror_requests,
                          **gateway_kwargs)
        self.gateways.append(gateway)
        gateway.start()
        self._announce(GroupInfo(
            group_id=GATEWAY_GROUP,
            name="EternalGateways",
            interface_name="",
            factory_name="",
            style=ReplicationStyle.ACTIVE,
            placement=tuple(gw.host.name for gw in self.gateways),
            min_replicas=0,
        ))
        return gateway

    def create_group(
        self,
        name: str,
        interface: Interface,
        factory: Callable[..., Servant],
        style: ReplicationStyle = ReplicationStyle.ACTIVE,
        num_replicas: int = 3,
        min_replicas: Optional[int] = None,
        placement: Optional[Sequence[str]] = None,
        checkpoint_interval: int = 10,
        properties: Optional["FaultToleranceProperties"] = None,
    ) -> GroupHandle:
        """Create a replicated object group (configuration-time API).

        Fault tolerance properties may be given either as individual
        keyword arguments or as one validated
        :class:`~repro.eternal.properties.FaultToleranceProperties`
        object (which then wins).  The runtime equivalent is invoking
        ``create_object`` on the replicated Replication Manager; both
        paths emit the same idempotent GROUP_ANNOUNCE.
        """
        if properties is not None:
            style = properties.replication_style
            num_replicas = properties.initial_number_replicas
            min_replicas = properties.minimum_number_replicas
            checkpoint_interval = properties.checkpoint_interval
        self.register_interface(interface)
        factory_name = f"factory.{name}"
        self.register_factory(factory_name, factory)
        # Skip ids already taken by groups created through the CORBA
        # Replication Manager (whose replicas allocate from the shared
        # registry).  An announce still in flight can in principle race
        # this check; await the manager invocation before calling
        # create_group — its reply is ordered after its announcement.
        taken = {g.group_id
                 for g in self.coordinator_rm().registry.all_groups()}
        taken.update(self._handles)
        group_id = next(self._next_gid)
        while group_id in taken:
            group_id = next(self._next_gid)
        if placement is None:
            if num_replicas > len(self.replica_host_names):
                raise ConfigurationError(
                    f"asked for {num_replicas} replicas but domain has "
                    f"{len(self.replica_host_names)} replica hosts")
            offset = group_id % len(self.replica_host_names)
            rotated = (self.replica_host_names[offset:]
                       + self.replica_host_names[:offset])
            placement = rotated[:num_replicas]
        info = GroupInfo(
            group_id=group_id, name=name, interface_name=interface.name,
            factory_name=factory_name, style=style,
            placement=tuple(placement),
            min_replicas=min_replicas if min_replicas is not None else num_replicas,
            initial_replicas=num_replicas,
            checkpoint_interval=checkpoint_interval)
        self._announce(info)
        handle = GroupHandle(self, group_id, name, interface)
        self._handles[group_id] = handle
        self._bind_name(handle)
        return handle

    def _announce(self, info: GroupInfo) -> None:
        self.coordinator_rm().multicast(DomainMessage(
            kind=MsgKind.GROUP_ANNOUNCE, source_group=0, target_group=0,
            data={"info": info}))

    def switch_style(self, group: Union[GroupHandle, str, int],
                     style: ReplicationStyle) -> None:
        """Switch a live group's replication style at runtime.

        The STYLE_SWITCH control message's position in the total order
        is the quiesce point: operations ordered before it complete
        under the old engine, operations after it run under the new
        one, and no invocation is lost or duplicated across the cut
        (the Replication Mechanisms relax stranded voting expectations
        and hand state across at the switch).  Only stateful styles
        participate — a STATELESS group has no consistency contract to
        hand over.
        """
        handle = self.resolve(group)
        rm = self.coordinator_rm()
        info = rm.registry.get(handle.group_id)
        if info is None:
            raise ConfigurationError(
                f"group {handle.name} is not announced yet")
        if not info.style.has_state or not style.has_state:
            raise ConfigurationError(
                "live style switching is defined between stateful styles "
                f"only ({info.style.value} -> {style.value})")
        rm.multicast(DomainMessage(
            kind=MsgKind.STYLE_SWITCH, source_group=0, target_group=0,
            data={"group_id": handle.group_id, "style": style.value,
                  "epoch": info.style_epoch + 1}))

    def enable_adaptive_styles(self, policy: Optional["StylePolicy"] = None,
                               groups: Optional[Sequence[
                                   Union[GroupHandle, str, int]]] = None,
                               tick_interval: float = 0.25
                               ) -> Dict[str, "StyleManager"]:
        """Run a :class:`~repro.eternal.managers.StyleManager` on every
        live replica host (leaderless, like the Resource Manager).

        ``groups`` restricts adaptation to the given groups; ``None``
        adapts every application group.  Returns the managers by host.
        """
        from .managers import StyleManager
        group_ids = (None if groups is None
                     else [self.resolve(g).group_id for g in groups])
        managers: Dict[str, StyleManager] = {}
        for host_name in self.replica_host_names:
            rm = self.rms.get(host_name)
            if rm is not None and rm.alive:
                managers[host_name] = StyleManager(
                    rm, policy=policy, groups=group_ids,
                    tick_interval=tick_interval)
        self.style_managers = managers
        return managers

    # ==================================================================
    # Invocation (driver/ambassador API)
    # ==================================================================

    def coordinator_rm(self) -> ReplicationMechanisms:
        """The RM used for driver-originated traffic: first live host."""
        for host in self.hosts:
            rm = self.rms.get(host.name)
            if rm is not None and rm.alive:
                return rm
        raise ConfigurationError(f"domain {self.name!r} has no live host")

    def resolve(self, group: Union[GroupHandle, str, int]) -> GroupHandle:
        if isinstance(group, GroupHandle):
            return group
        # Locally-created handles resolve even before their announcement
        # is delivered (invoke() settles on readiness anyway).
        for handle in self._handles.values():
            if group == handle.name or group == handle.group_id:
                return handle
        registry = self.coordinator_rm().registry
        info = (registry.get(group) if isinstance(group, int)
                else registry.by_name(group))
        if info is None:
            raise ConfigurationError(f"unknown group {group!r}")
        handle = self._handles.get(info.group_id)
        if handle is None:
            interface = self.interfaces[info.interface_name]
            handle = GroupHandle(self, info.group_id, info.name, interface)
            self._handles[info.group_id] = handle
        return handle

    def invoke(self, group: Union[GroupHandle, str, int], operation: str,
               args: Sequence[Any], settle_timeout: float = 10.0) -> Promise:
        """Invoke a replicated group from the domain driver.

        Waits (in simulated time) for the group's announcement to reach
        the coordinator before issuing, so ``create_group`` +
        ``invoke`` compose without explicit settling.
        """
        handle = self.resolve(group)
        promise = Promise()
        seq = next(self._invoke_seq)
        deadline = self.world.scheduler.now + settle_timeout

        def try_issue() -> None:
            if promise.done:
                return
            try:
                rm = self.coordinator_rm()
            except ConfigurationError as exc:
                promise.reject(exc)
                return
            info = rm.registry.get(handle.group_id)
            ready = (info is not None and
                     any(rm2 is not None and rm2.alive and
                         (rec := rm2.replicas.get(handle.group_id)) is not None
                         and rec.ready
                         for rm2 in (self.rms.get(h) for h in info.placement)))
            if not ready:
                if self.world.scheduler.now >= deadline:
                    promise.reject(TransientError(
                        f"group {handle.name} never became ready"))
                else:
                    self.world.scheduler.call_after(0.002, try_issue)
                return
            inner = rm.external_invoke(
                handle.group_id, operation, list(args),
                client_uid=f"driver/{self.name}", request_seq=seq)
            inner.on_done(lambda p: promise.reject(p.error)
                          if p.failed else promise.resolve(p.value))

        try_issue()
        return promise

    # ==================================================================
    # References and status
    # ==================================================================

    def ior_for(self, group: Union[GroupHandle, str, int],
                first_gateway_only: bool = False) -> Ior:
        handle = self.resolve(group)
        return self.interceptor.published_ior(
            handle.group_id, handle.interface.repo_id,
            first_gateway_only=first_gateway_only)

    def is_stable(self) -> bool:
        """All live members operational on one ring, registries synced."""
        live = [m for m in self.members.values() if m.alive]
        if not live:
            return False
        expected = {m.name for m in live}
        if not all(m.state == TotemMember.OPERATIONAL and
                   set(m.members) == expected for m in live):
            return False
        # Synced registries that have seen the manager bootstrap: a domain
        # is not usable until its directory reached every processor.
        return all(rm.synced and REPLICATION_MANAGER_GROUP in rm.registry
                   for rm in self.rms.values() if rm.alive)

    def await_stable(self, timeout: float = 30.0) -> None:
        self.world.scheduler.run_until(self.is_stable, timeout=timeout)

    def await_ready(self, handle: GroupHandle, timeout: float = 30.0) -> None:
        self.world.scheduler.run_until(handle.is_ready, timeout=timeout)

    def rm_on(self, host_name: str) -> ReplicationMechanisms:
        return self.rms[host_name]

    def restart_host(self, host_name: str) -> ReplicationMechanisms:
        """Restart the Eternal software on a recovered replica processor.

        The processor itself must already be up (``Host.recover``); this
        starts a fresh Totem member and Replication Mechanisms on it.
        The new RM joins unsynced: it buffers deliveries until an
        incumbent sends the directory snapshot, after which the Resource
        Manager may place replacement replicas on it again.
        """
        host = self.world.network.host(host_name)
        if not host.alive:
            raise ConfigurationError(
                f"recover host {host_name} before restarting its software")
        if host_name in self.rms and self.rms[host_name].alive:
            raise ConfigurationError(f"{host_name} is already running")
        if any(gw.host.name == host_name for gw in self.gateways):
            raise ConfigurationError(
                "gateway processors are restarted via add_gateway")
        member = TotemMember(host, host_name, self.transport,
                             config=self.totem_config,
                             tracer=self.world.tracer)
        rm = ReplicationMechanisms(
            host, member, self.name, self.interfaces, self.factories,
            tracer=self.world.tracer, synced=False)
        DomainEgress(rm, self.world.tcp)
        self.egresses[host_name] = rm._egress
        self.members[host_name] = member
        self.rms[host_name] = rm
        if host_name in self.replica_host_names:
            self.resource_managers[host_name] = ResourceManager(
                rm, self.replica_host_names)
        member.start()
        return rm

    def live_host_names(self) -> List[str]:
        return [h.name for h in self.hosts if h.alive]
