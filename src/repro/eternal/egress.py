"""Cross-domain egress: replicated clients invoking foreign domains.

Figure 1 of the paper shows replicated objects in one fault tolerance
domain invoking replicated objects in another *through the gateways*.
On the callee side this is the ordinary gateway path.  On the caller
side the problem is that *every* replica of the invoking group executes
the nested call, yet exactly one TCP connection to the remote gateway
must carry it.

The egress component solves this deterministically: the invoking
group's current primary host (first live host of its placement — a fact
every processor derives identically from the shared registry and
membership) acts as the egress and opens an enhanced-client connection
to the remote gateway.  The egress supplies a deterministic client
identifier (domain + group) and a deterministic request id derived from
the operation id, so if the egress host fails and another replica host
takes over and *reissues* the outstanding calls, the remote domain's
duplicate detection (keyed on client id + operation id, section 3.5)
suppresses re-execution and returns the cached response.

The remote reply is multicast back into the local domain as a RESPONSE
from the EXTERNAL pseudo-group, so all local replicas resume their
suspended executions at the same point in the total order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

from ..core.identifiers import OperationId, UNUSED_CLIENT_ID
from ..errors import ConfigurationError
from ..iiop.giop import RequestMessage, encode_reply, encode_request
from ..iiop.ior import Ior
from ..iiop.service_context import ClientIdContext, SpanContext
from ..orb.connection import IiopClientConnection
from ..orb.dispatch import encode_arguments
from ..orb.idl import Operation
from ..orb.servant import NestedCall
from .messages import DomainMessage, MsgKind
from .naming import EXTERNAL_GROUP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .replication import ReplicationMechanisms


@dataclass
class _EgressRecord:
    source_group: int
    op_id: OperationId
    call: NestedCall
    encoded: bytes
    request_id: int
    profiles: List[Tuple[str, int]]
    profile_index: int = 0
    attempts: int = 0
    completed: bool = False


class DomainEgress:
    """Per-processor egress client for cross-domain nested calls."""

    def __init__(self, rm: "ReplicationMechanisms", tcp) -> None:
        self.rm = rm
        self.tcp = tcp
        self.outstanding: Dict[Tuple[int, OperationId], _EgressRecord] = {}
        self._connections: Dict[Tuple[str, int], IiopClientConnection] = {}
        self.stats = {"issued": 0, "reissued": 0, "completed": 0}
        rm.attach_egress(self)

    # ------------------------------------------------------------------
    # Interface resolution for foreign targets
    # ------------------------------------------------------------------

    def operation_for(self, call: NestedCall) -> Operation:
        if call.interface is None:
            raise ConfigurationError(
                "cross-domain NestedCall must name its interface")
        interface = self.rm.interfaces.get(call.interface)
        if interface is None:
            raise ConfigurationError(
                f"interface {call.interface!r} not registered locally")
        return interface.operation(call.operation)

    # ------------------------------------------------------------------
    # Issue / reissue
    # ------------------------------------------------------------------

    def _client_uid(self, source_group: int) -> str:
        return f"egress/{self.rm.domain_name}/g{source_group}"

    def _am_egress(self, source_group: int) -> bool:
        info = self.rm.registry.get(source_group)
        if info is None:
            return False
        return info.primary(self.rm.live_hosts) == self.rm.host.name

    def issue(self, source_group: int, op_id: OperationId,
              call: NestedCall, trace=None) -> None:
        """Record the outstanding call; transmit if we are the egress.

        ``trace`` is an optional (trace_id, parent_span_id, hop) tuple;
        when present the request carries a trace service context so the
        remote domain's gateway continues the caller's causal trace
        across the domain boundary.
        """
        op = self.operation_for(call)
        ior = Ior.from_string(call.target)
        profiles = [p.address for p in ior.iiop_profiles()]
        object_key = ior.primary_profile().object_key
        request_id = ((op_id.parent_ts & 0xFFFFFF) << 8) | (op_id.child_seq & 0xFF)
        contexts = [ClientIdContext(
            self._client_uid(source_group)).to_service_context()]
        if trace is not None:
            contexts.append(SpanContext(
                trace[0], trace[1], hop=trace[2]).to_service_context())
        request = RequestMessage(
            request_id=request_id,
            response_expected=not op.oneway,
            object_key=object_key,
            operation=op.name,
            service_contexts=contexts,
            body=encode_arguments(op, call.args),
        )
        record = _EgressRecord(
            source_group=source_group, op_id=op_id, call=call,
            encoded=encode_request(request), request_id=request_id,
            profiles=profiles)
        self.outstanding[(source_group, op_id)] = record
        if self._am_egress(source_group):
            self._transmit(record)

    def _transmit(self, record: _EgressRecord) -> None:
        if record.completed or not record.profiles:
            return
        if record.attempts >= 3 * len(record.profiles):
            return  # give up quietly; the waiting execution times out upstream
        address = record.profiles[record.profile_index % len(record.profiles)]
        connection = self._connections.get(address)
        if connection is None or not connection.usable:
            connection = IiopClientConnection(self.tcp, self.rm.host, address)
            self._connections[address] = connection
        record.attempts += 1
        self.stats["issued" if record.attempts == 1 else "reissued"] += 1

        def on_reply(reply) -> None:
            self._on_remote_reply(record, reply)

        def on_failure(exc: Exception) -> None:
            if record.completed:
                return
            record.profile_index += 1
            self.rm.scheduler.call_soon(lambda: self._retransmit(record))

        connection.send_request(record.encoded, record.request_id,
                                on_reply, on_failure)

    def _retransmit(self, record: _EgressRecord) -> None:
        if not record.completed and self._am_egress(record.source_group):
            self._transmit(record)

    # ------------------------------------------------------------------
    # Remote reply -> local multicast
    # ------------------------------------------------------------------

    def _on_remote_reply(self, record: _EgressRecord, reply) -> None:
        if record.completed:
            return
        self.rm.multicast(DomainMessage(
            kind=MsgKind.RESPONSE,
            source_group=EXTERNAL_GROUP,
            target_group=record.source_group,
            client_id=UNUSED_CLIENT_ID,
            op_id=record.op_id,
            iiop=encode_reply(reply),
            data={"responder": f"egress/{self.rm.host.name}"},
        ))

    def complete(self, source_group: int, op_id: OperationId) -> None:
        """Called by the RM when the response has been delivered."""
        record = self.outstanding.pop((source_group, op_id), None)
        if record is not None:
            record.completed = True
            self.stats["completed"] += 1

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def handle_membership(self, live_hosts: Tuple[str, ...]) -> None:
        """Reissue outstanding calls for groups we just became egress of."""
        for record in list(self.outstanding.values()):
            if not record.completed and self._am_egress(record.source_group):
                self._transmit(record)
