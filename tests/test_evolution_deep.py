"""Deeper coverage of the Evolution Manager's rolling upgrades."""

import pytest

from repro import ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant

from tests.helpers import make_counter_group, make_domain, replica_counts


class CounterV2(CounterServant):
    def increment(self, amount):
        self.count += amount
        return self.count


class CounterV3(CounterV2):
    pass


def test_upgrade_warm_passive_group(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    world.await_promise(group.invoke("increment", 3))
    domain.register_factory("factory.v2", CounterV2)
    version = world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v2"), timeout=120)
    assert version == 2
    assert world.await_promise(group.invoke("increment", 1)) == 4
    world.run(until=world.now + 0.5)
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None:
            assert type(record.servant) is CounterV2
            assert record.version == 2


def test_upgrade_cold_passive_group_preserves_log_semantics(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               checkpoint_interval=3)
    for _ in range(4):
        world.await_promise(group.invoke("increment", 1))
    domain.register_factory("factory.v2", CounterV2)
    world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v2"), timeout=120)
    # After the upgrade a primary crash must still fail over correctly.
    primary = group.info().primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(primary)
    assert world.await_promise(group.invoke("increment", 1),
                               timeout=600) == 5


def test_two_successive_upgrades(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    domain.register_factory("factory.v2", CounterV2)
    domain.register_factory("factory.v3", CounterV3)
    assert world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v2"),
        timeout=120) == 2
    assert world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v3"),
        timeout=120) == 3
    world.run(until=world.now + 0.5)
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None:
            assert type(record.servant) is CounterV3
    assert world.await_promise(group.invoke("increment", 1)) == 2


def test_upgrade_with_unknown_factory_stalls_safely(world):
    """A typo'd factory name must not destroy the group: the first
    replacement replica cannot be built, the upgrade never completes,
    but the remaining replicas keep serving."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    promise = domain.evolution.upgrade_group("Counter", "factory.nope")
    # Drive for a while: the upgrade cannot finish...
    try:
        world.await_promise(promise, timeout=5)
        completed = True
    except Exception:
        completed = False
    assert not completed
    # ...but the group (minus at most one replica) still serves.
    assert world.await_promise(group.invoke("increment", 1),
                               timeout=600) == 2


def test_upgrade_version_visible_in_properties(world):
    import json
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    domain.register_factory("factory.v2", CounterV2)
    world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v2"), timeout=120)
    props = json.loads(world.await_promise(domain.invoke(
        "EternalReplicationManager", "get_properties", ["Counter"])))
    assert props["version"] == 2
