"""repro: a full reproduction of "Gateways for Accessing Fault Tolerance
Domains" (Narasimhan, Moser, Melliar-Smith — Middleware 2000).

The package builds, from scratch and in simulation, everything the
paper describes: a deterministic distributed-systems substrate
(:mod:`repro.sim`), the CORBA GIOP/IIOP wire stack (:mod:`repro.iiop`),
a miniature ORB (:mod:`repro.orb`), a Totem-style totally-ordered
multicast (:mod:`repro.totem`), the Eternal fault tolerance
infrastructure (:mod:`repro.eternal`), and — the paper's contribution —
the gateway mechanisms (:mod:`repro.core`).

Quickstart::

    from repro import (World, FaultToleranceDomain, ReplicationStyle,
                       Orb, FtClientLayer)

    world = World(seed=42)
    domain = FaultToleranceDomain(world, "trading", num_hosts=3)
    gateway = domain.add_gateway(port=2809)
    group = domain.create_group("Trader", TRADER_INTERFACE,
                                TraderServant,
                                style=ReplicationStyle.ACTIVE)
    domain.await_stable()

    client_host = world.add_host("browser")
    orb = Orb(world, client_host)
    stub = FtClientLayer(orb).string_to_object(
        domain.ior_for(group).to_string(), TRADER_INTERFACE)
    print(world.await_promise(stub.call("buy", "ACME", 100)))
"""

from .core import (
    CircuitBreaker,
    DuplicateSuppressor,
    FtClientLayer,
    FtRequester,
    Gateway,
    GatewayPool,
    InvocationId,
    MuxRequester,
    OperationId,
    ResponseId,
    UNUSED_CLIENT_ID,
)
from .errors import (
    BadOperation,
    CommFailure,
    ConfigurationError,
    CorbaSystemException,
    InvocationFailure,
    MarshalError,
    NoResponse,
    ObjectNotExist,
    ReproError,
    SimulationError,
    TransientError,
)
from .eternal import (
    FaultToleranceDomain,
    GroupHandle,
    GroupInfo,
    ReplicationMechanisms,
    ReplicationStyle,
)
from .iiop import Ior
from .obs import TraceCollector, TraceSpan
from .orb import Interface, NestedCall, Operation, Orb, Param, Servant, Stub
from .sim import LatencyModel, Promise, World
from .totem import TotemConfig, TotemMember

__version__ = "1.0.0"

__all__ = [
    "BadOperation",
    "CircuitBreaker",
    "CommFailure",
    "ConfigurationError",
    "CorbaSystemException",
    "DuplicateSuppressor",
    "FaultToleranceDomain",
    "FtClientLayer",
    "FtRequester",
    "Gateway",
    "GatewayPool",
    "GroupHandle",
    "GroupInfo",
    "Interface",
    "InvocationFailure",
    "InvocationId",
    "Ior",
    "LatencyModel",
    "MarshalError",
    "MuxRequester",
    "NestedCall",
    "NoResponse",
    "ObjectNotExist",
    "Operation",
    "OperationId",
    "Orb",
    "Param",
    "Promise",
    "ReplicationMechanisms",
    "ReplicationStyle",
    "ReproError",
    "ResponseId",
    "Servant",
    "SimulationError",
    "Stub",
    "TotemConfig",
    "TraceCollector",
    "TraceSpan",
    "TotemMember",
    "TransientError",
    "UNUSED_CLIENT_ID",
    "World",
    "__version__",
]
