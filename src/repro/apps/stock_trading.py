"""The paper's motivating application: Internet stock trading.

Section 1: "Internet-based applications such as stock trading involve
customers using Web browsers (typically unreplicated thin clients) to
communicate with the servers (typically replicated for fault tolerance)
of a stock trading company."

``TradingDeskServant`` is the replicated front server the browsers
reach through the gateway; ``SettlementServant`` models the back-office
group it invokes (nested, possibly in another fault tolerance domain as
in Figure 1); ``QuoteServant`` is a read-mostly price source.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import InvocationFailure
from ..iiop.types import TC_LONG, TC_STRING, TC_VOID
from ..orb.idl import Interface, Operation, Param
from ..orb.servant import NestedCall, Servant

QUOTE_INTERFACE = Interface("QuoteService", [
    Operation("set_price", [Param("symbol", TC_STRING),
                            Param("price_cents", TC_LONG)], TC_VOID),
    Operation("price", [Param("symbol", TC_STRING)], TC_LONG),
])

SETTLEMENT_INTERFACE = Interface("Settlement", [
    Operation("settle", [Param("order_desc", TC_STRING),
                         Param("total_cents", TC_LONG)], TC_LONG),
    Operation("settled_count", [], TC_LONG),
])

TRADING_INTERFACE = Interface("TradingDesk", [
    Operation("buy", [Param("customer", TC_STRING),
                      Param("symbol", TC_STRING),
                      Param("shares", TC_LONG)], TC_LONG),
    Operation("sell", [Param("customer", TC_STRING),
                       Param("symbol", TC_STRING),
                       Param("shares", TC_LONG)], TC_LONG),
    Operation("position", [Param("customer", TC_STRING),
                           Param("symbol", TC_STRING)], TC_LONG),
    Operation("orders_executed", [], TC_LONG),
])


class QuoteServant(Servant):
    """Replicated price source."""

    interface = QUOTE_INTERFACE

    def __init__(self, initial: Optional[Dict[str, int]] = None) -> None:
        self.prices: Dict[str, int] = dict(initial or {})

    def set_price(self, symbol: str, price_cents: int) -> None:
        self.prices[symbol] = price_cents

    def price(self, symbol: str) -> int:
        if symbol not in self.prices:
            raise InvocationFailure("IDL:repro/UnknownSymbol:1.0", symbol)
        return self.prices[symbol]


class SettlementServant(Servant):
    """Back-office settlement group (the second domain in Figure 1)."""

    interface = SETTLEMENT_INTERFACE

    def __init__(self) -> None:
        self.settlements: List[str] = []

    def settle(self, order_desc: str, total_cents: int) -> int:
        self.settlements.append(f"{order_desc}@{total_cents}")
        return len(self.settlements)

    def settled_count(self) -> int:
        return len(self.settlements)


class TradingDeskServant(Servant):
    """Replicated trading front-end invoked by unreplicated browsers.

    ``settlement_target`` is either a group name (same domain) or a
    stringified IOR (another domain, reached through its gateway as in
    Figure 1); ``quote_group`` is an in-domain group name.
    """

    interface = TRADING_INTERFACE

    def __init__(self, quote_group: str = "Quotes",
                 settlement_target: str = "Settlement",
                 settlement_interface: str = "Settlement") -> None:
        self.quote_group = quote_group
        self.settlement_target = settlement_target
        self.settlement_interface = settlement_interface
        self.positions: Dict[str, int] = {}
        self.executed = 0

    def _key(self, customer: str, symbol: str) -> str:
        return f"{customer}:{symbol}"

    def buy(self, customer: str, symbol: str, shares: int):
        if shares <= 0:
            raise InvocationFailure("IDL:repro/BadOrder:1.0",
                                    f"shares={shares}")
        price = yield NestedCall(self.quote_group, "price", [symbol])
        total = price * shares
        yield NestedCall(self.settlement_target, "settle",
                         [f"BUY {customer} {shares} {symbol}", total],
                         interface=self.settlement_interface)
        key = self._key(customer, symbol)
        self.positions[key] = self.positions.get(key, 0) + shares
        self.executed += 1
        return self.positions[key]

    def sell(self, customer: str, symbol: str, shares: int):
        key = self._key(customer, symbol)
        held = self.positions.get(key, 0)
        if shares <= 0 or shares > held:
            raise InvocationFailure(
                "IDL:repro/BadOrder:1.0",
                f"{customer} holds {held} {symbol}, cannot sell {shares}")
        price = yield NestedCall(self.quote_group, "price", [symbol])
        total = price * shares
        yield NestedCall(self.settlement_target, "settle",
                         [f"SELL {customer} {shares} {symbol}", total],
                         interface=self.settlement_interface)
        self.positions[key] = held - shares
        self.executed += 1
        return self.positions[key]

    def position(self, customer: str, symbol: str) -> int:
        return self.positions.get(self._key(customer, symbol), 0)

    def orders_executed(self) -> int:
        return self.executed
