"""Unit tests for Host/Process lifecycle and failure-aware timers."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Process, World


class TickingProcess(Process):
    def __init__(self, host, name):
        super().__init__(host, name)
        self.ticks = 0
        self.started = 0
        self.stopped = 0

    def handle_start(self):
        self.started += 1
        self._tick()

    def handle_stop(self):
        self.stopped += 1

    def _tick(self):
        self.ticks += 1
        self.after(1.0, self._tick)


def test_process_lifecycle(world):
    host = world.add_host("h")
    process = TickingProcess(host, "ticker")
    process.start()
    assert process.running and process.alive
    world.run(until=5.5)
    assert process.ticks == 6  # immediate + 5 scheduled
    process.stop()
    world.run(until=10.0)
    assert process.ticks == 6  # timers suppressed after stop
    assert process.stopped == 1


def test_start_is_idempotent(world):
    host = world.add_host("h")
    process = TickingProcess(host, "t")
    process.start()
    process.start()
    assert process.started == 1


def test_host_crash_stops_processes_and_suppresses_timers(world):
    host = world.add_host("h")
    process = TickingProcess(host, "t")
    process.start()
    world.run(until=2.5)
    ticks_at_crash = process.ticks
    host.crash()
    assert process.stopped == 1
    assert not process.alive
    world.run(until=20.0)
    assert process.ticks == ticks_at_crash


def test_cannot_start_process_on_dead_host(world):
    host = world.add_host("h")
    host.crash()
    process = TickingProcess(host, "t")
    with pytest.raises(ConfigurationError):
        process.start()


def test_recovery_does_not_restart_processes(world):
    """Paper semantics: processor recovery is separate from replica
    recovery; software must be explicitly restarted."""
    host = world.add_host("h")
    process = TickingProcess(host, "t")
    process.start()
    host.crash()
    host.recover()
    assert host.alive
    assert not process.running
    world.run(until=5.0)
    assert process.ticks <= 1


def test_crash_and_recovery_host_callbacks(world):
    host = world.add_host("h")
    events = []
    host.on_crash(lambda h: events.append("crash"))
    host.on_recovery(lambda h: events.append("recover"))
    host.crash()
    host.recover()
    assert events == ["crash", "recover"]


def test_timer_list_is_pruned(world):
    """The process keeps its timer bookkeeping bounded."""
    host = world.add_host("h")
    process = TickingProcess(host, "t")
    process.start()
    for _ in range(200):
        process.soon(lambda: None)
    world.run(until=1.0)
    for _ in range(200):
        process.soon(lambda: None)
    assert len(process._timers) <= 300


def test_soon_runs_at_current_time(world):
    host = world.add_host("h")
    process = TickingProcess(host, "t")
    process.running = True
    seen = []
    world.scheduler.call_at(3.0, lambda: process.soon(
        lambda: seen.append(world.now)))
    world.run()
    assert seen == [3.0]
