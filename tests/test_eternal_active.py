"""Integration tests: active replication inside a fault tolerance domain."""

import pytest

from repro import ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import InvocationFailure

from tests.helpers import make_counter_group, make_domain, replica_counts


def test_every_replica_executes_every_invocation(world):
    domain = make_domain(world)
    group = make_counter_group(domain, replicas=3)
    world.await_promise(group.invoke("increment", 5))
    world.await_promise(group.invoke("increment", 3))
    counts = replica_counts(domain, group)
    assert len(counts) == 3
    assert set(counts.values()) == {8}


def test_exactly_one_response_reaches_the_caller(world):
    domain = make_domain(world)
    group = make_counter_group(domain, replicas=3)
    assert world.await_promise(group.invoke("increment", 5)) == 5
    world.run(until=world.now + 0.1)  # let the trailing duplicates arrive
    rm = domain.coordinator_rm()
    # The two extra replica responses were suppressed at the caller side.
    assert rm.stats["responses_delivered"] == 1
    assert rm.stats["responses_suppressed"] == 2


def test_user_exception_propagates_from_replicas(world):
    domain = make_domain(world)
    group = make_counter_group(domain, replicas=3)
    world.await_promise(group.invoke("decrement", 5))
    with pytest.raises(InvocationFailure):
        world.await_promise(group.invoke("fail_if_negative"))
    # Failing operations keep replicas consistent.
    assert set(replica_counts(domain, group).values()) == {-5}


def test_direct_single_replica_access_diverges_state(world):
    """The paper's core argument (section 3): contacting ONE replica of
    an actively replicated object directly violates replica consistency.
    We bypass the infrastructure to demonstrate the divergence the
    gateway exists to prevent."""
    domain = make_domain(world)
    group = make_counter_group(domain, replicas=3)
    world.await_promise(group.invoke("increment", 1))
    # Bypass: mutate exactly one replica, as a direct TCP invocation would.
    info = group.info()
    lone = domain.rms[info.placement[0]].replicas[group.group_id]
    lone.servant.increment(10)
    counts = replica_counts(domain, group)
    assert len(set(counts.values())) > 1  # inconsistent replication


def test_replica_crash_does_not_lose_state(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    world.await_promise(group.invoke("increment", 9))
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    assert world.await_promise(group.invoke("increment", 1)) == 10
    counts = replica_counts(domain, group)
    assert victim not in counts
    assert set(counts.values()) == {10}


def test_resource_manager_restores_replication_degree(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 42))
    before = set(group.info().placement)
    victim = group.info().placement[1]
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.0)
    after = group.info()
    assert len(after.placement) == 3
    replacement = (set(after.placement) - before).pop()
    record = domain.rms[replacement].replicas[group.group_id]
    assert record.ready
    assert record.servant.count == 42  # state transferred, not re-initialised


def test_state_transfer_preserves_in_flight_consistency(world):
    """Invocations racing a state transfer are buffered at the joiner
    and applied after the snapshot, ending fully consistent."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 1))
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    # Fire more traffic while the replacement is being brought up.
    promises = [group.invoke("increment", 1) for _ in range(10)]
    world.run_until_done(promises)
    world.run(until=world.now + 2.0)
    counts = replica_counts(domain, group)
    assert len(counts) == 3
    assert set(counts.values()) == {11}


def test_two_groups_are_isolated(world):
    domain = make_domain(world, num_hosts=4)
    a = make_counter_group(domain, name="A", replicas=3)
    b = make_counter_group(domain, name="B", replicas=3)
    world.await_promise(a.invoke("increment", 5))
    world.await_promise(b.invoke("increment", 7))
    assert set(replica_counts(domain, a).values()) == {5}
    assert set(replica_counts(domain, b).values()) == {7}


def test_stateless_style_executes_everywhere(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.STATELESS,
                               replicas=3)
    assert world.await_promise(group.invoke("increment", 2)) == 2
    assert set(replica_counts(domain, group).values()) == {2}


def test_sequential_invocations_from_driver_are_ordered(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    results = []
    for i in range(10):
        results.append(world.await_promise(group.invoke("increment", 1)))
    assert results == list(range(1, 11))


def test_concurrent_invocations_all_complete(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    promises = [group.invoke("increment", 1) for _ in range(20)]
    world.run_until_done(promises)
    assert sorted(p.result() for p in promises) == list(range(1, 21))
    assert set(replica_counts(domain, group).values()) == {20}


def test_voting_masks_single_value_fault(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3)
    world.await_promise(group.invoke("increment", 5))
    # Corrupt one replica (a value fault active+voting should mask).
    faulty_host = group.info().placement[0]
    domain.rms[faulty_host].replicas[group.group_id].servant.count = 999
    assert world.await_promise(group.invoke("value")) == 5


def test_voting_result_reflects_majority_even_after_fault(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3)
    domain.await_ready(group)
    faulty_host = group.info().placement[2]
    domain.rms[faulty_host].replicas[group.group_id].servant.count = -100
    assert world.await_promise(group.invoke("increment", 1)) == 1
