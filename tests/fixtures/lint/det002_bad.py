# reprolint: module=repro.core.fake
"""DET002 bad fixture: ambient randomness instead of the seeded RNG."""

import random
import uuid
from random import shuffle


def pick(items):
    shuffle(items)
    return items[int(random.random() * len(items))], uuid.uuid4()
