"""Unit tests for the resource-leak audit (repro.obs.audit)."""

import json

import pytest

from repro import World
from repro.errors import AuditError
from repro.obs import AuditScope, MetricsRegistry, to_json


def test_register_and_clean_audit():
    scope = AuditScope()
    items = []
    scope.register("box", lambda: len(items), floor=0, owner="me")
    report = scope.audit()
    assert report.ok
    assert report.violations == []
    report.assert_clean()  # must not raise


def test_violation_detected_and_assert_clean_raises():
    scope = AuditScope()
    items = [1, 2]
    scope.register("box", lambda: len(items), floor=1, owner="me")
    report = scope.audit()
    assert not report.ok
    assert [row.name for row in report.violations] == ["box"]
    with pytest.raises(AuditError) as err:
        report.assert_clean()
    assert "me/box" in str(err.value)
    assert "size=2" in str(err.value)


def test_callable_floor_tracks_live_state():
    scope = AuditScope()
    items = [1, 2, 3]
    limit = [3]
    scope.register("box", lambda: len(items), floor=lambda: limit[0])
    assert scope.audit().ok
    limit[0] = 2
    assert not scope.audit().ok


def test_snapshot_only_entries_never_violate():
    scope = AuditScope()
    scope.register("queue", lambda: 10_000, floor=None)
    report = scope.audit()
    assert report.ok
    assert report.rows[0].floor is None
    assert "floor=-" in report.rows[0].describe()


def test_inactive_owner_is_skipped():
    """A crashed process's collections are frozen memory, not leaks."""
    scope = AuditScope()
    live = [True]
    scope.register("box", lambda: 5, floor=0, active=lambda: live[0])
    assert not scope.audit().ok
    live[0] = False
    report = scope.audit()
    assert report.ok
    assert not report.rows[0].active
    assert "skipped" in report.rows[0].describe()


def test_gauges_lazy_and_summed_over_active_entries():
    metrics = MetricsRegistry(clock=lambda: 0.0)
    scope = AuditScope(metrics=metrics, clock=lambda: 1.5)
    scope.register("a", lambda: 2, floor=None, gauge="x.state.size")
    scope.register("b", lambda: 3, floor=None, gauge="x.state.size")
    scope.register("c", lambda: 7, floor=None, gauge="x.state.size",
                   active=lambda: False)
    # Never-audited scopes leave the registry untouched (golden safety).
    assert "x.state.size" not in json.loads(to_json(metrics))["metrics"]
    report = scope.audit()
    assert report.at == 1.5
    assert metrics.gauge("x.state.size").value == 5  # active entries only


def test_report_render_lists_every_row():
    scope = AuditScope()
    scope.register("a", lambda: 0, floor=0, owner="one")
    scope.register("b", lambda: 9, floor=2, owner="two")
    text = scope.audit().render()
    assert "2 collections" in text
    assert "1 leak(s)" in text
    assert "LEAK" in text


def test_world_audit_strict_raises_on_induced_leak():
    world = World(seed=1)
    leaked = [object()]
    world.audit_scope.register("test.leak", lambda: len(leaked), floor=0)
    with pytest.raises(AuditError):
        world.audit(strict=True)
    leaked.clear()
    world.audit(strict=True)  # clean again


def test_world_audit_publishes_state_gauges():
    world = World(seed=3)
    world.audit()
    doc = json.loads(world.metrics_json())["metrics"]
    assert "sched.state.queue_depth" in doc
    assert "sched.state.stale_entries" in doc
