"""Leader-follower replication and live runtime style switching.

Covers the third engine family (semi-active leader-follower: every
replica executes, only the leader speaks) and the STYLE_SWITCH
quiesce-and-handoff protocol that moves a *live* group between styles
without losing or duplicating an invocation, plus the replication-
lifecycle regressions fixed alongside (``_last_primary`` purge on group
removal, fail-fast for voting groups with zero live replicas).
"""

import pytest

from repro import ReplicationStyle, World
from repro.errors import ConfigurationError, CorbaSystemException
from repro.eternal.styles import StylePolicy

from tests.helpers import (
    SLOW_TOTEM,
    external_client,
    make_counter_group,
    make_domain,
    replica_counts,
)


# ======================================================================
# Style property matrix (the is_active split)
# ======================================================================

def test_style_property_matrix():
    """Each engine decision has its own named property; the old
    ``is_active`` conflation (executes-everywhere vs responds-from-all)
    is gone."""
    S = ReplicationStyle
    matrix = {
        # style:            (executes_everywhere, responds_from_all,
        #                    is_semi_active, is_passive, needs_voting,
        #                    has_state)
        S.STATELESS:         (True, True, False, False, False, False),
        S.COLD_PASSIVE:      (False, False, False, True, False, True),
        S.WARM_PASSIVE:      (False, False, False, True, False, True),
        S.ACTIVE:            (True, True, False, False, False, True),
        S.ACTIVE_WITH_VOTING: (True, True, False, False, True, True),
        S.LEADER_FOLLOWER:   (True, False, True, False, False, True),
    }
    for style, expected in matrix.items():
        got = (style.executes_everywhere, style.responds_from_all,
               style.is_semi_active, style.is_passive, style.needs_voting,
               style.has_state)
        assert got == expected, style
    assert not hasattr(S.ACTIVE, "is_active")


def test_leader_follower_requires_two_replicas():
    from repro.eternal.properties import FaultToleranceProperties
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties(
            replication_style=ReplicationStyle.LEADER_FOLLOWER,
            initial_number_replicas=1, minimum_number_replicas=1)
    # Two replicas is the legal floor.
    FaultToleranceProperties(
        replication_style=ReplicationStyle.LEADER_FOLLOWER,
        initial_number_replicas=2, minimum_number_replicas=2)


def test_style_policy_validation():
    with pytest.raises(ValueError):
        StylePolicy(demote_to=ReplicationStyle.STATELESS)
    with pytest.raises(ValueError):
        StylePolicy(min_dwell_s=-1.0)


# ======================================================================
# Leader-follower steady state and failover
# ======================================================================

def test_lf_every_replica_executes_but_one_responds(world):
    """Semi-active semantics: hot state everywhere, one response on the
    ring — no duplicates for the gateway to suppress."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.LEADER_FOLLOWER,
                               replicas=3)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    for i in range(3):
        assert world.await_promise(stub.call("increment", 1)) == i + 1
    world.run(until=world.now + 0.3)
    assert set(replica_counts(domain, group).values()) == {3}
    assert gateway.stats["responses_delivered"] == 3
    assert gateway.stats["duplicates_suppressed"] == 0
    # Two followers withheld their response for each of the three ops.
    assert world.metrics.value("rm.style.responses_withheld") == 6


def test_lf_leader_crash_promotes_without_replay(world):
    """Followers are hot, so a leader crash costs a re-transmission, not
    a log replay."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain,
                               style=ReplicationStyle.LEADER_FOLLOWER,
                               replicas=3, min_replicas=2)
    for _ in range(5):
        world.await_promise(group.invoke("increment", 1))
    info = group.info()
    leader = info.primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(leader)
    world.run(until=world.now + 1.5)
    assert world.await_promise(group.invoke("increment", 1)) == 6
    counts = replica_counts(domain, group)
    assert leader not in counts
    assert set(counts.values()) == {6}
    assert world.metrics.value("rm.style.promotions") >= 1
    assert world.metrics.value("fault.recovery.replays") == 0


def test_lf_nested_calls_follow_leader_ordering(world):
    """The leader multicasts an ordering record per two-way nested call;
    followers verify their own interleaving against it (zero
    mismatches in a deterministic domain)."""
    from repro.apps import (
        ACCOUNT_INTERFACE,
        AccountServant,
        LEDGER_INTERFACE,
        LedgerServant,
        TRANSFER_INTERFACE,
        TransferAgentServant,
    )
    domain = make_domain(world, num_hosts=4)
    lf = ReplicationStyle.LEADER_FOLLOWER
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant, style=lf)
    ledger = domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant,
                                 style=lf)
    agent = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                TransferAgentServant, style=lf)
    world.await_promise(accounts.invoke("deposit", "alice", 100))
    assert world.await_promise(
        agent.invoke("transfer", "alice", "bob", 40)) == 40
    world.run(until=world.now + 0.3)
    assert world.await_promise(accounts.invoke("balance", "alice")) == 60
    assert world.await_promise(ledger.invoke("entries")) == 1
    assert world.metrics.value("rm.style.order.records") >= 3
    assert world.metrics.value("rm.style.order.followed") >= 1
    assert world.metrics.value("rm.style.order.mismatch") == 0


# ======================================================================
# Lifecycle bugfixes
# ======================================================================

def test_last_primary_purged_on_group_remove(world):
    """Removing a group must purge its ``_last_primary`` entry, so the
    ``rm.last_primary`` audit entry returns to its floor (one entry per
    registry group)."""
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    gid = group.group_id
    for rm in domain.rms.values():
        assert gid in rm._last_primary
    world.await_promise(domain.invoke(
        "EternalReplicationManager", "remove_object", [group.name]))
    world.run(until=world.now + 0.5)
    for rm in domain.rms.values():
        assert gid not in rm._last_primary
        assert len(rm._last_primary) <= len(rm.registry)
    world.audit(strict=True)


def test_voting_group_losing_all_replicas_fails_fast(world):
    """Killing every replica of a voting group mid-invocation must fail
    the in-flight request with TRANSIENT (not hang it forever), and
    subsequent requests are failed fast at the gateway."""
    domain = make_domain(world, gateways=1, totem_config=SLOW_TOTEM)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3, min_replicas=1)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    assert world.await_promise(stub.call("increment", 1)) == 1

    # Mid-invocation: the request is on its way in when the group dies.
    doomed = stub.call("increment", 1)
    world.run(until=world.now + 0.01)
    for host in group.info().placement:
        world.faults.crash_now(host)
    with pytest.raises(CorbaSystemException) as exc:
        world.await_promise(doomed, timeout=600)
    assert "Transient" in str(exc.value)

    # Fresh requests are refused immediately (no pending record pinned).
    world.run(until=world.now + 1.0)
    with pytest.raises(CorbaSystemException) as exc:
        world.await_promise(stub.call("increment", 1), timeout=600)
    assert "Transient" in str(exc.value)
    assert world.metrics.value("gateway.req.unservable") >= 1
    assert not gateway._pending
    assert gateway._filter.pending_count == 0


# ======================================================================
# Live runtime switching
# ======================================================================

def test_live_switch_active_to_lf_and_back_loses_nothing(world):
    """Traffic straddling two style switches: every invocation executes
    exactly once (the returned counter values are a complete
    permutation) and exactly one reply reaches the client per request."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain, replicas=3)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    promises = [stub.call("increment", 1) for _ in range(10)]
    world.run(until=world.now + 0.02)
    domain.switch_style(group, ReplicationStyle.LEADER_FOLLOWER)
    promises += [stub.call("increment", 1) for _ in range(10)]
    world.run(until=world.now + 0.02)
    domain.switch_style(group, ReplicationStyle.ACTIVE)
    promises += [stub.call("increment", 1) for _ in range(10)]
    world.run_until_done(promises, timeout=240)
    values = [p.value for p in promises]
    assert sorted(values) == list(range(1, 31))  # exactly once, no gaps
    world.run(until=world.now + 0.3)
    assert set(replica_counts(domain, group).values()) == {30}
    assert gateway.stats["responses_delivered"] + \
        gateway.stats["votes_relaxed"] == 30
    assert world.metrics.value("rm.style.switches") > 0
    info = group.info()
    assert info.style is ReplicationStyle.ACTIVE
    assert info.style_epoch == 2


def test_live_switch_voting_to_lf_relaxes_stranded_quorums(world):
    """Dropping the voting requirement mid-flight must not strand
    expectations registered with the old majority."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    promises = [stub.call("increment", 1) for _ in range(8)]
    world.run(until=world.now + 0.03)
    domain.switch_style(group, ReplicationStyle.LEADER_FOLLOWER)
    promises += [stub.call("increment", 1) for _ in range(8)]
    world.run_until_done(promises, timeout=240)
    assert sorted(p.value for p in promises) == list(range(1, 17))
    world.run(until=world.now + 0.3)
    assert set(replica_counts(domain, group).values()) == {16}
    # Exactly one reply per request, whichever path flushed it.
    assert gateway.stats["responses_delivered"] + \
        gateway.stats["votes_relaxed"] == 16
    # The response partition invariant survives the relaxation.
    m = world.metrics
    assert m.value("gateway.resp.received") == (
        m.value("gateway.dup.suppressed")
        + m.value("gateway.resp.unexpected")
        + m.value("gateway.resp.vote_pending")
        + m.value("gateway.resp.delivered")
        + m.value("gateway.resp.unroutable"))


def test_passive_to_lf_switch_catches_backups_up(world):
    """Passive -> executing switch: backups silently replay their log
    suffix to the primary's state before executing new traffic."""
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3)
    for _ in range(4):
        world.await_promise(group.invoke("increment", 1))
    domain.switch_style(group, ReplicationStyle.LEADER_FOLLOWER)
    world.run(until=world.now + 0.5)
    assert world.await_promise(group.invoke("increment", 1)) == 5
    world.run(until=world.now + 0.3)
    # Every replica is hot now, at the same state.
    assert set(replica_counts(domain, group).values()) == {5}


def test_switch_rejects_stateless_endpoints(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    stateless = make_counter_group(domain, name="Stateless",
                                   style=ReplicationStyle.STATELESS)
    with pytest.raises(ConfigurationError):
        domain.switch_style(group, ReplicationStyle.STATELESS)
    with pytest.raises(ConfigurationError):
        domain.switch_style(stateless, ReplicationStyle.ACTIVE)


# ======================================================================
# Chaos: leader killed around the switch point
# ======================================================================

def test_mid_switch_leader_kill_is_exactly_once():
    """The hardest interleaving: a switch to leader-follower with the
    about-to-be leader killed while traffic is in flight.  Exactly one
    response per invocation, proven from the gateway's duplicate-
    suppression counters and the causal trace (one egress per request
    container), not from logs."""
    world = World(seed=4242, trace_spans=True)
    domain = make_domain(world, gateways=1, totem_config=SLOW_TOTEM)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    domain.await_ready(group)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    promises = [stub.call("increment", 1) for _ in range(12)]
    world.run(until=world.now + 0.02)
    domain.switch_style(group, ReplicationStyle.LEADER_FOLLOWER)
    world.run(until=world.now + 0.05)  # switch is on the ring, traffic live
    leader = group.info().primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(leader)
    world.run_until_done(promises, timeout=600)
    values = [p.value for p in promises]
    assert sorted(values) == list(range(1, 13))  # nothing lost or doubled
    world.run(until=world.now + 1.0)
    # Counter evidence: one client delivery per request; every extra
    # response copy (voting-era replicas, promotion resends) was
    # suppressed, never written to the socket.
    assert gateway.stats["responses_delivered"] + \
        gateway.stats["votes_relaxed"] == 12
    m = world.metrics
    assert m.value("gateway.resp.received") == (
        m.value("gateway.dup.suppressed")
        + m.value("gateway.resp.unexpected")
        + m.value("gateway.resp.vote_pending")
        + m.value("gateway.resp.delivered")
        + m.value("gateway.resp.unroutable"))
    # Trace evidence: every request container saw exactly one egress.
    spans = world.network.spans
    containers = spans.select(name="gateway.request")
    assert len(containers) == 12
    for container in containers:
        egresses = [s for s in spans.select(trace_id=container.trace_id,
                                            name="gateway.egress")]
        assert len(egresses) == 1, container.trace_id
    surviving = replica_counts(domain, group)
    assert set(surviving.values()) == {12}


# ======================================================================
# Adaptive style management
# ======================================================================

def test_style_manager_demotes_under_shed_and_promotes_under_faults(world):
    """The StylePolicy loop: admission sheds demote an ACTIVE group to
    leader-follower; a fault-rate spike promotes it back."""
    domain = make_domain(world)
    gw = domain.add_gateway(port=2809, admission_window=1,
                            admission_queue_limit=2)
    domain.await_stable()
    group = make_counter_group(domain, replicas=3)
    policy = StylePolicy(demote_shed_rate=1.0, demote_latency_s=1000.0,
                         promote_fault_rate=0.5, min_dwell_s=0.0)
    domain.enable_adaptive_styles(policy=policy, groups=[group],
                                  tick_interval=0.05)
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    # Flood far past the admission window: sheds drive the demotion.
    flood = [stub.call("increment", 1) for _ in range(30)]
    world.run_until_done(flood, timeout=240)
    assert gw.stats["requests_shed"] > 0
    world.scheduler.run_until(
        lambda: group.info().style is ReplicationStyle.LEADER_FOLLOWER,
        timeout=10.0)
    assert group.info().style is ReplicationStyle.LEADER_FOLLOWER
    # Kill the group's leader: the fault spike promotes it back to the
    # remembered baseline style.
    leader = group.info().primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(leader)
    world.scheduler.run_until(
        lambda: group.info().style is ReplicationStyle.ACTIVE,
        timeout=15.0)
    assert group.info().style is ReplicationStyle.ACTIVE
    # The demoted/promoted group still serves correctly afterwards.
    world.run(until=world.now + 1.0)
    assert world.await_promise(group.invoke("value")) >= 0
