# reprolint: module=repro.totem.fake
"""SIM001 bad fixture: host I/O and blocking calls in sim-driven code."""

import threading
import time


def worker(path):
    threading.Thread(target=print).start()
    time.sleep(0.1)
    with open(path) as handle:
        return handle.read()
