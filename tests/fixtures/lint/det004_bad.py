# reprolint: module=repro.eternal.fake
"""DET004 bad fixture: object identity reaching deterministic state."""


def tiebreak(a, b):
    return a if id(a) < id(b) else b


def dedup_key(name):
    return hash(name)
