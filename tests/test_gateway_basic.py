"""Integration tests: unreplicated clients through the gateway (Fig. 3, 5)."""

import pytest

from repro import Orb, ReplicationStyle, World
from repro.errors import CorbaSystemException, InvocationFailure, ObjectNotExist
from repro.iiop import Ior

from tests.helpers import (
    external_client,
    make_counter_group,
    make_domain,
    replica_counts,
)


def test_plain_client_invokes_replicated_server(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    assert world.await_promise(stub.call("increment", 7)) == 7
    assert world.await_promise(stub.call("value")) == 7
    assert set(replica_counts(domain, group).values()) == {7}


def test_client_is_unaware_of_replication(world):
    """The IOR the client uses names the gateway, not any replica; the
    client talks plain IIOP over one TCP connection (section 3.1)."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    ior = domain.ior_for(group)
    profile = ior.primary_profile()
    assert profile.host == domain.gateways[0].host.name
    assert profile.port == domain.gateways[0].port
    replica_hosts = set(group.info().placement)
    assert profile.host not in replica_hosts


def test_duplicate_responses_suppressed_at_gateway(world):
    """Figure 3: the actively replicated server returns one response per
    replica; the gateway delivers exactly one to the client."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain, replicas=3)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    for _ in range(4):
        world.await_promise(stub.call("increment", 1))
    world.run(until=world.now + 0.2)
    assert gateway.stats["responses_delivered"] == 4
    assert gateway.stats["duplicates_suppressed"] == 8  # (3-1) x 4


def test_gateway_spawns_socket_per_client(world):
    """Section 3.1: one dedicated socket per client, original socket
    keeps listening."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    stubs = []
    for i in range(4):
        _, stub, _ = external_client(world, domain, group, enhanced=False,
                                     host_name=f"client{i}")
        stubs.append(stub)
    promises = [stub.call("increment", 1) for stub in stubs]
    world.run_until_done(promises, timeout=240)
    assert gateway.stats["clients_connected"] == 4
    assert world.await_promise(stubs[0].call("value")) == 4


def test_counter_client_ids_assigned_per_server_group(world):
    """Section 3.2: the gateway keeps one counter per destination server
    group; two plain clients of the same group get consecutive ids."""
    domain = make_domain(world, gateways=1)
    a = make_counter_group(domain, name="A")
    b = make_counter_group(domain, name="B")
    gateway = domain.gateways[0]
    for i, group in enumerate((a, a, b)):
        _, stub, _ = external_client(world, domain, group, enhanced=False,
                                     host_name=f"client{i}")
        world.await_promise(stub.call("increment", 1))
    assert set(gateway._counters) == {a.group_id, b.group_id}
    ids = sorted(cid for cid in gateway._routing if isinstance(cid, int))
    base = gateway.index * 1_000_000
    assert ids == [base + 1, base + 2]  # two clients of group A; B reuses 1


def test_enhanced_client_ids_come_from_service_context(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    uids = [cid for cid in gateway._routing if isinstance(cid, str)]
    assert uids == [f"{layer.client_uid}#1"]


def test_user_exception_travels_through_gateway(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("decrement", 3))
    with pytest.raises(InvocationFailure):
        world.await_promise(stub.call("fail_if_negative"))


def test_unknown_object_key_yields_object_not_exist(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    gateway = domain.gateways[0]
    bogus = Ior.for_endpoints(group.interface.repo_id,
                              [(gateway.host.name, gateway.port)],
                              b"ftdomain/dom/9999")
    stub = orb.string_to_object(bogus, group.interface)
    with pytest.raises(CorbaSystemException):
        world.await_promise(stub.call("value"))
    assert gateway.stats["bad_object_key"] == 1


def test_foreign_domain_key_rejected(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    gateway = domain.gateways[0]
    foreign = Ior.for_endpoints(group.interface.repo_id,
                                [(gateway.host.name, gateway.port)],
                                b"ftdomain/otherdomain/10")
    stub = orb.string_to_object(foreign, group.interface)
    with pytest.raises(CorbaSystemException):
        world.await_promise(stub.call("value"))


def test_gateway_serves_passive_groups_too(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("increment", 2)) == 2
    assert world.await_promise(stub.call("value")) == 2


def test_gateway_serves_voting_groups(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING)
    domain.await_ready(group)
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("increment", 2)) == 2
    # Corrupt one replica; the gateway's vote collection masks it.
    faulty = group.info().placement[0]
    domain.rms[faulty].replicas[group.group_id].servant.count = 77
    assert world.await_promise(stub.call("value")) == 2


def test_two_clients_interleaved_requests_route_correctly(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub_a, _ = external_client(world, domain, group, host_name="alice")
    _, stub_b, _ = external_client(world, domain, group, host_name="bob")
    promises = []
    for i in range(5):
        promises.append(stub_a.call("increment", 1))
        promises.append(stub_b.call("increment", 1))
    world.run_until_done(promises, timeout=240)
    assert sorted(p.result() for p in promises) == list(range(1, 11))


def test_client_disconnect_cleans_gateway_state(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    # Close the client's connection; gateways purge per-client state.
    connection = orb._connections[next(iter(orb._connections))]
    connection.close()
    world.run(until=world.now + 0.5)
    assert gateway.stats["clients_gone"] >= 1
    assert not gateway._routing


def test_nested_serving_group_reachable_through_gateway(world):
    """A client invokes a group whose servant fans out nested calls."""
    from repro.apps import (ACCOUNT_INTERFACE, AccountServant,
                            LEDGER_INTERFACE, LedgerServant,
                            TRANSFER_INTERFACE, TransferAgentServant)
    domain = make_domain(world, num_hosts=4, gateways=1)
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant)
    domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant)
    agent = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                TransferAgentServant)
    world.await_promise(accounts.invoke("deposit", "alice", 100))
    _, stub, _ = external_client(world, domain, agent)
    assert world.await_promise(
        stub.call("transfer", "alice", "bob", 25), timeout=240) == 25
    assert world.await_promise(accounts.invoke("balance", "bob")) == 25
