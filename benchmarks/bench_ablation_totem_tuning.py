"""E13 (ablation): Totem tuning vs failover latency and throughput.

DESIGN.md calls out the protocol's timing knobs as design choices worth
ablating.  Two sweeps:

* **token_loss_timeout** — failure *detection* time.  E9/E12 showed
  failover latency is detection-dominated; this ablation shows the
  relationship directly: halve the timeout, roughly halve the failover
  latency — at the cost of more spurious reformations on slow rings
  (the trade every group-communication deployment tunes).
* **token_hold** — per-visit processing delay, i.e. ring rotation time.
  It bounds steady-state invocation latency inside the domain.
"""

import pytest

from repro import ReplicationStyle, TotemConfig, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import FaultToleranceDomain


def build(config, seed):
    world = World(seed=seed, trace=False)
    domain = FaultToleranceDomain(world, "dom", num_hosts=4,
                                  totem_config=config)
    domain.await_stable()
    group = domain.create_group("Counter", COUNTER_INTERFACE, CounterServant,
                                style=ReplicationStyle.ACTIVE,
                                num_replicas=3, min_replicas=2)
    domain.await_ready(group)
    return world, domain, group


def run_failover(loss_timeout):
    config = TotemConfig(token_loss_timeout=loss_timeout)
    world, domain, group = build(config, seed=1300)
    world.await_promise(group.invoke("increment", 1), timeout=600)
    victim = group.info().placement[0]
    t0 = world.now
    world.faults.crash_now(victim)
    world.await_promise(group.invoke("increment", 1), timeout=600)
    return {"loss_timeout_s": loss_timeout,
            "failover_latency_s": round(world.now - t0, 4)}


def run_steady_state(token_hold):
    config = TotemConfig(token_hold=token_hold)
    world, domain, group = build(config, seed=1301)
    world.await_promise(group.invoke("increment", 1), timeout=600)
    t0 = world.now
    for _ in range(10):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    return {"token_hold_s": token_hold,
            "invocation_latency_s": round((world.now - t0) / 10, 5)}


@pytest.mark.parametrize("loss_timeout", [0.0125, 0.025, 0.05, 0.1])
def test_failover_tracks_detection_timeout(benchmark, loss_timeout):
    row = benchmark.pedantic(run_failover, args=(loss_timeout,), rounds=1,
                             iterations=1)
    benchmark.extra_info.update(row)
    # Failover latency is bounded below by the detection timeout and
    # stays within a few multiples of it (gather + replay are fast).
    assert row["failover_latency_s"] >= loss_timeout
    assert row["failover_latency_s"] < loss_timeout * 4 + 0.05


@pytest.mark.parametrize("token_hold", [0.0002, 0.001, 0.005])
def test_invocation_latency_tracks_rotation_time(benchmark, token_hold):
    row = benchmark.pedantic(run_steady_state, args=(token_hold,), rounds=1,
                             iterations=1)
    benchmark.extra_info.update(row)
    # One invocation needs roughly one rotation for the request and one
    # for the responses; rotation ~ ring size x (hold + hop).
    rotation = 5 * (token_hold + 0.0005)
    assert row["invocation_latency_s"] < 4 * rotation + 0.01


def test_tuning_tradeoff_table(benchmark):
    def run():
        return {
            "failover_by_timeout": {
                t: run_failover(t)["failover_latency_s"]
                for t in (0.0125, 0.1)},
            "latency_by_hold": {
                h: run_steady_state(h)["invocation_latency_s"]
                for h in (0.0002, 0.005)},
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "failover_fast_detect_s": table["failover_by_timeout"][0.0125],
        "failover_slow_detect_s": table["failover_by_timeout"][0.1],
        "latency_fast_ring_s": table["latency_by_hold"][0.0002],
        "latency_slow_ring_s": table["latency_by_hold"][0.005],
    })
    assert (table["failover_by_timeout"][0.0125]
            < table["failover_by_timeout"][0.1])
    assert (table["latency_by_hold"][0.0002]
            < table["latency_by_hold"][0.005])
