"""Tests for the replicated Naming Service and domain auto-binding."""

import pytest

from repro import FtClientLayer, Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant, NAMING_INTERFACE
from repro.errors import InvocationFailure

from tests.helpers import external_client, make_counter_group, make_domain


def naming_stub(world, domain, host_name="resolver"):
    host = world.add_host(host_name)
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb)
    naming = domain.resolve("EternalNaming")
    return layer.string_to_object(domain.ior_for(naming).to_string(),
                                  NAMING_INTERFACE), orb, layer


def test_bind_resolve_unbind_cycle(world):
    domain = make_domain(world, gateways=1)
    domain.enable_naming()
    stub, _, _ = naming_stub(world, domain)
    world.await_promise(stub.call("bind", "svc", "IOR:abcd"), timeout=600)
    assert world.await_promise(stub.call("resolve", "svc"),
                               timeout=600) == "IOR:abcd"
    world.await_promise(stub.call("unbind", "svc"), timeout=600)
    with pytest.raises(InvocationFailure):
        world.await_promise(stub.call("resolve", "svc"), timeout=600)


def test_bind_twice_raises_already_bound(world):
    domain = make_domain(world, gateways=1)
    domain.enable_naming()
    stub, _, _ = naming_stub(world, domain)
    world.await_promise(stub.call("bind", "x", "IOR:1"), timeout=600)
    with pytest.raises(InvocationFailure) as excinfo:
        world.await_promise(stub.call("bind", "x", "IOR:2"), timeout=600)
    assert "AlreadyBound" in excinfo.value.repo_id
    # rebind overwrites without complaint.
    world.await_promise(stub.call("rebind", "x", "IOR:2"), timeout=600)
    assert world.await_promise(stub.call("resolve", "x"),
                               timeout=600) == "IOR:2"


def test_list_names_travels_as_corba_sequence(world):
    domain = make_domain(world, gateways=1)
    domain.enable_naming()
    stub, _, _ = naming_stub(world, domain)
    for name in ("zeta", "alpha", "midd"):
        world.await_promise(stub.call("bind", name, f"IOR:{name}"),
                            timeout=600)
    names = world.await_promise(stub.call("list_names"), timeout=600)
    assert names == ["alpha", "midd", "zeta"]  # sorted, full round trip


def test_groups_auto_bound_after_enable(world):
    domain = make_domain(world, gateways=1)
    domain.enable_naming()
    make_counter_group(domain)
    stub, orb, layer = naming_stub(world, domain)
    ior_string = world.await_promise(stub.call("resolve", "Counter"),
                                     timeout=600)
    # Full bootstrap: resolve by name, then invoke the resolved object.
    counter = layer.string_to_object(ior_string, COUNTER_INTERFACE)
    assert world.await_promise(counter.call("increment", 9), timeout=600) == 9


def test_groups_created_before_enable_are_bound_retroactively(world):
    domain = make_domain(world, gateways=1)
    make_counter_group(domain)          # created BEFORE naming exists
    domain.enable_naming()
    stub, _, layer = naming_stub(world, domain)
    ior_string = world.await_promise(stub.call("resolve", "Counter"),
                                     timeout=600)
    assert ior_string.startswith("IOR:")


def test_naming_replicas_are_consistent(world):
    domain = make_domain(world, gateways=1)
    naming = domain.enable_naming()
    stub, _, _ = naming_stub(world, domain)
    world.await_promise(stub.call("bind", "a", "IOR:a"), timeout=600)
    world.run(until=world.now + 0.5)
    snapshots = set()
    for rm in domain.rms.values():
        record = rm.replicas.get(naming.group_id)
        if record is not None:
            snapshots.add(tuple(sorted(record.servant.bindings.items())))
    assert len(snapshots) == 1


def test_naming_survives_replica_crash(world):
    domain = make_domain(world, num_hosts=4, gateways=1)
    naming = domain.enable_naming()
    stub, _, _ = naming_stub(world, domain)
    world.await_promise(stub.call("bind", "persistent", "IOR:p"),
                        timeout=600)
    domain.await_ready(naming)
    world.faults.crash_now(naming.info().placement[0])
    assert world.await_promise(stub.call("resolve", "persistent"),
                               timeout=600) == "IOR:p"


def test_enable_naming_is_idempotent(world):
    domain = make_domain(world, gateways=1)
    first = domain.enable_naming()
    second = domain.enable_naming()
    assert first is second
