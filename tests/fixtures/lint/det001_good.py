# reprolint: module=repro.sim.fake
"""DET001 good fixture: simulated time + the sanctioned boundary."""

from repro.obs.hostclock import wall_clock


def stamp(scheduler):
    return scheduler.now, wall_clock()
