"""Unit tests for servants, state capture, and the execution engine."""

import pytest

from repro import NestedCall, Servant
from repro.errors import BadOperation, InvocationFailure
from repro.eternal.execution import Execution, Outcome
from repro.iiop import TC_LONG, TC_STRING
from repro.iiop.giop import RequestMessage
from repro.orb import Interface, Operation, Param, encode_arguments

CALC = Interface("Calc", [
    Operation("add", [Param("a", TC_LONG), Param("b", TC_LONG)], TC_LONG),
    Operation("chain", [Param("x", TC_LONG)], TC_LONG),
    Operation("boom", [], TC_LONG),
])


class CalcServant(Servant):
    interface = CALC

    def __init__(self):
        self.calls = 0
        self._secret = "hidden"

    def add(self, a, b):
        self.calls += 1
        return a + b

    def chain(self, x):
        doubled = yield NestedCall("Helper", "double", [x])
        tripled = yield NestedCall("Helper", "triple", [doubled])
        return tripled

    def boom(self):
        raise InvocationFailure("IDL:repro/Boom:1.0", "bang")


def request_for(op_name, args):
    op = CALC.operation(op_name)
    return RequestMessage(request_id=1, response_expected=True,
                          object_key=b"k", operation=op_name,
                          body=encode_arguments(op, args))


def test_default_get_state_excludes_private_attributes():
    servant = CalcServant()
    servant.calls = 5
    state = servant.get_state()
    assert state == {"calls": 5}


def test_state_snapshot_is_deep_copied():
    class Holder(Servant):
        interface = CALC

        def __init__(self):
            self.items = [1, 2]

    servant = Holder()
    snapshot = servant.get_state()
    servant.items.append(3)
    assert snapshot == {"items": [1, 2]}


def test_set_state_restores():
    a, b = CalcServant(), CalcServant()
    a.calls = 9
    b.set_state(a.get_state())
    assert b.calls == 9


def test_execution_simple_method_completes():
    execution = Execution(CalcServant(), CALC, request_for("add", [2, 3]), 100)
    outcome = execution.start()
    assert outcome.kind == Outcome.DONE
    assert outcome.value == 5
    assert execution.finished


def test_execution_decodes_arguments_in_order():
    execution = Execution(CalcServant(), CALC, request_for("add", [10, -4]), 1)
    assert execution.start().value == 6


def test_execution_application_error_becomes_error_outcome():
    execution = Execution(CalcServant(), CALC, request_for("boom", []), 1)
    outcome = execution.start()
    assert outcome.kind == Outcome.ERROR
    assert isinstance(outcome.error, InvocationFailure)


def test_execution_unknown_operation_is_error():
    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="missing")
    execution = Execution(CalcServant(), CALC, request, 1)
    outcome = execution.start()
    assert outcome.kind == Outcome.ERROR


def test_generator_execution_yields_nested_calls():
    execution = Execution(CalcServant(), CALC, request_for("chain", [5]), 100)
    outcome = execution.start()
    assert outcome.kind == Outcome.NESTED
    assert outcome.nested == NestedCall("Helper", "double", [5])
    outcome = execution.resume(10)
    assert outcome.kind == Outcome.NESTED
    assert outcome.nested.operation == "triple"
    outcome = execution.resume(30)
    assert outcome.kind == Outcome.DONE
    assert outcome.value == 30


def test_child_operation_ids_count_from_one():
    execution = Execution(CalcServant(), CALC, request_for("chain", [5]), 100)
    execution.start()
    first = execution.next_child_op_id()
    second = execution.next_child_op_id()
    assert (first.parent_ts, first.child_seq) == (100, 1)
    assert (second.parent_ts, second.child_seq) == (100, 2)


def test_resume_error_propagates_into_generator():
    execution = Execution(CalcServant(), CALC, request_for("chain", [5]), 1)
    execution.start()
    outcome = execution.resume_error(InvocationFailure("IDL:x:1.0", "no"))
    assert outcome.kind == Outcome.ERROR
    assert isinstance(outcome.error, InvocationFailure)


def test_yielding_non_nested_call_is_an_error():
    BAD = Interface("Bad", [Operation("go", [], TC_LONG)])

    class BadServant(Servant):
        interface = BAD

        def go(self):
            yield 42

    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="go")
    execution = Execution(BadServant(), BAD, request, 1)
    outcome = execution.start()
    assert outcome.kind == Outcome.ERROR


def test_dispatch_local_bypasses_marshalling():
    servant = CalcServant()
    assert servant.dispatch_local("add", [1, 2]) == 3
