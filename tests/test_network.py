"""Unit tests for the datagram network and fault injector."""

import pytest

from repro.sim import FaultInjector, LatencyModel, Network, Scheduler, Tracer, World


def make_network():
    scheduler = Scheduler()
    network = Network(scheduler, latency_model=LatencyModel(
        local_latency=0.001, wan_latency=0.05))
    return scheduler, network


def test_datagram_delivered_after_latency():
    scheduler, network = make_network()
    a = network.add_host("a", site="s")
    b = network.add_host("b", site="s")
    received = []
    network.send(a, b, "hello", received.append)
    scheduler.run()
    assert received == ["hello"]
    assert scheduler.now == pytest.approx(0.001)


def test_wan_latency_applies_across_sites():
    scheduler, network = make_network()
    a = network.add_host("a", site="s1")
    b = network.add_host("b", site="s2")
    received = []
    network.send(a, b, "x", received.append)
    scheduler.run()
    assert scheduler.now == pytest.approx(0.05)


def test_send_from_dead_host_dropped():
    scheduler, network = make_network()
    a = network.add_host("a")
    b = network.add_host("b")
    a.crash()
    received = []
    network.send(a, b, "x", received.append)
    scheduler.run()
    assert received == []


def test_delivery_to_host_that_dies_in_flight_dropped():
    scheduler, network = make_network()
    a = network.add_host("a", site="s1")
    b = network.add_host("b", site="s2")
    received = []
    network.send(a, b, "x", received.append)
    scheduler.call_at(0.01, b.crash)  # mid-flight (latency 0.05)
    scheduler.run()
    assert received == []


def test_partition_blocks_and_heals():
    scheduler, network = make_network()
    a = network.add_host("a")
    b = network.add_host("b")
    network.partition({"a"}, {"b"})
    received = []
    network.send(a, b, "blocked", received.append)
    scheduler.run()
    assert received == []
    network.heal_partitions()
    network.send(a, b, "through", received.append)
    scheduler.run()
    assert received == ["through"]


def test_partition_blocks_both_directions():
    scheduler, network = make_network()
    a = network.add_host("a")
    b = network.add_host("b")
    network.partition({"a"}, {"b"})
    assert not network.can_communicate("a", "b")
    assert not network.can_communicate("b", "a")


def test_partition_leaves_third_parties_untouched():
    scheduler, network = make_network()
    network.add_host("a")
    network.add_host("b")
    network.add_host("c")
    network.partition({"a"}, {"b"})
    assert network.can_communicate("a", "c")
    assert network.can_communicate("b", "c")


def test_crash_and_recovery_listeners():
    scheduler, network = make_network()
    a = network.add_host("a")
    events = []
    network.on_host_crash(lambda host: events.append(("down", host.name)))
    network.on_host_recovery(lambda host: events.append(("up", host.name)))
    a.crash()
    a.recover()
    assert events == [("down", "a"), ("up", "a")]


def test_crash_is_idempotent():
    scheduler, network = make_network()
    a = network.add_host("a")
    a.crash()
    a.crash()
    assert a.crash_count == 1


def test_fault_injector_schedules_crash_and_recovery():
    world = World(seed=1)
    world.add_host("h")
    world.faults.crash_host("h", at=1.0)
    world.faults.recover_host("h", at=2.0)
    world.run(until=1.5)
    assert not world.network.host("h").alive
    world.run(until=2.5)
    assert world.network.host("h").alive
    assert [kind for (_, kind, _) in world.faults.injected] == ["crash", "recover"]


def test_fault_injector_partition_window():
    world = World(seed=1)
    world.add_host("a")
    world.add_host("b")
    world.faults.partition({"a"}, {"b"}, at=1.0, heal_at=2.0)
    world.run(until=1.5)
    assert not world.network.can_communicate("a", "b")
    world.run(until=2.5)
    assert world.network.can_communicate("a", "b")


def test_tracer_counts_and_filters():
    tracer = Tracer(enabled=True, categories={"keep"})
    tracer.emit(0.0, "keep", "src", "kept message", detail=1)
    tracer.emit(0.0, "drop", "src", "filtered message")
    assert tracer.count("keep") == 1
    assert tracer.count("drop") == 1     # counted even when filtered
    assert len(tracer.records) == 1      # but not retained
    assert tracer.select("keep")[0].message == "kept message"
    assert "kept message" in tracer.dump()


def test_tracer_disabled_still_counts():
    tracer = Tracer(enabled=False)
    tracer.emit(0.0, "cat", "src", "m")
    assert tracer.count("cat") == 1
    assert tracer.records == []


def test_network_accounting():
    scheduler, network = make_network()
    a = network.add_host("a")
    b = network.add_host("b")
    network.send(a, b, "x", lambda _: None, size=100)
    scheduler.run()
    assert network.datagrams_sent == 1
    assert network.datagrams_delivered == 1
    assert network.bytes_sent == 100
