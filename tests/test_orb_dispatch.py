"""Unit tests for the shared marshalling-level dispatch helpers."""

import pytest

from repro.errors import (
    BadOperation,
    CorbaSystemException,
    InvocationFailure,
    MarshalError,
    ObjectNotExist,
)
from repro.iiop import (
    ReplyStatus,
    RequestMessage,
    TC_LONG,
    TC_STRING,
    decode_reply,
)
from repro.orb import (
    Interface,
    Operation,
    Param,
    Servant,
    decode_arguments,
    decode_result,
    encode_arguments,
    reply_for_exception,
    reply_for_result,
    run_to_completion,
    start_invocation,
)
from repro.orb.servant import NestedCall

ECHO = Interface("Echo", [
    Operation("echo", [Param("text", TC_STRING)], TC_STRING),
    Operation("add", [Param("a", TC_LONG), Param("b", TC_LONG)], TC_LONG),
    Operation("nested", [], TC_LONG),
])


class EchoServant(Servant):
    interface = ECHO

    def echo(self, text):
        return text

    def add(self, a, b):
        return a + b

    def nested(self):
        result = yield NestedCall("Other", "op", [])
        return result


def request_for(op_name, args):
    op = ECHO.operation(op_name)
    return RequestMessage(request_id=9, response_expected=True,
                          object_key=b"k", operation=op_name,
                          body=encode_arguments(op, args))


def test_argument_roundtrip():
    op = ECHO.operation("add")
    body = encode_arguments(op, [4, 5])
    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="add", body=body)
    assert decode_arguments(op, request) == [4, 5]


def test_reply_for_result_roundtrip():
    op = ECHO.operation("echo")
    encoded = reply_for_result(9, op, "hello")
    reply = decode_reply(encoded)
    assert reply.request_id == 9
    assert reply.status == ReplyStatus.NO_EXCEPTION
    assert decode_result(op, reply) == "hello"


def test_reply_for_user_exception_roundtrip():
    op = ECHO.operation("echo")
    encoded = reply_for_exception(9, InvocationFailure("IDL:X:1.0", "det"))
    reply = decode_reply(encoded)
    assert reply.status == ReplyStatus.USER_EXCEPTION
    with pytest.raises(InvocationFailure) as excinfo:
        decode_result(op, reply)
    assert excinfo.value.repo_id == "IDL:X:1.0"
    assert excinfo.value.detail == "det"


def test_reply_for_system_exception_roundtrip():
    op = ECHO.operation("echo")
    encoded = reply_for_exception(9, ObjectNotExist("gone", minor=3))
    reply = decode_reply(encoded)
    assert reply.status == ReplyStatus.SYSTEM_EXCEPTION
    with pytest.raises(CorbaSystemException) as excinfo:
        decode_result(op, reply)
    assert "ObjectNotExist" in str(excinfo.value)
    assert excinfo.value.minor == 3


def test_decode_result_rejects_unknown_status():
    op = ECHO.operation("echo")
    from repro.iiop import ReplyMessage
    reply = ReplyMessage(request_id=1, status=99, body=b"")
    with pytest.raises(MarshalError):
        decode_result(op, reply)


def test_run_to_completion_simple():
    op, value = run_to_completion(EchoServant(), request_for("add", [2, 2]))
    assert value == 4
    assert op.name == "add"


def test_run_to_completion_rejects_generators():
    with pytest.raises(CorbaSystemException):
        run_to_completion(EchoServant(), request_for("nested", []))


def test_start_invocation_returns_generator_for_nested():
    import inspect
    op, outcome = start_invocation(EchoServant(), request_for("nested", []))
    assert inspect.isgenerator(outcome)


def test_start_invocation_unknown_operation():
    request = RequestMessage(request_id=1, response_expected=True,
                             object_key=b"k", operation="nope")
    with pytest.raises(BadOperation):
        start_invocation(EchoServant(), request)


def test_interface_rejects_duplicate_operations():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        Interface("Dup", [Operation("x", [], TC_LONG),
                          Operation("x", [], TC_LONG)])


def test_oneway_with_result_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        Operation("bad", [], TC_LONG, oneway=True)


def test_interface_contains_and_repr():
    assert "echo" in ECHO
    assert "missing" not in ECHO
    assert "Echo" in repr(ECHO)
