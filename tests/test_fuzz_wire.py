"""Fuzz-style property tests: adversarial bytes against the wire codecs.

Internet-facing code (the gateway parses whatever a TCP peer sends)
must fail *only* with MarshalError — never hang, never raise anything
else, never misinterpret garbage as a valid message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import (
    CdrInputStream,
    GiopFramer,
    Ior,
    decode_reply,
    decode_request,
    encode_request,
    parse_header,
    RequestMessage,
)


@settings(max_examples=300)
@given(st.binary(max_size=128))
def test_framer_never_raises_anything_but_marshal_error(data):
    framer = GiopFramer()
    try:
        framer.feed(data)
    except MarshalError:
        pass


@settings(max_examples=300)
@given(st.binary(min_size=12, max_size=128))
def test_parse_header_is_total(data):
    try:
        message_type, little_endian, size = parse_header(data)
    except MarshalError:
        return
    assert 0 <= message_type <= 255
    assert size >= 0


@settings(max_examples=200)
@given(st.binary(max_size=200))
def test_decode_request_rejects_or_decodes(data):
    """Random bytes with a forged valid REQUEST header must either
    decode (vanishingly unlikely) or raise MarshalError."""
    header = (b"GIOP" + bytes([1, 0, 0, 0])
              + len(data).to_bytes(4, "big"))
    try:
        decode_request(header + data)
    except MarshalError:
        pass


@settings(max_examples=200)
@given(st.binary(max_size=200))
def test_decode_reply_rejects_or_decodes(data):
    header = (b"GIOP" + bytes([1, 0, 0, 1])
              + len(data).to_bytes(4, "big"))
    try:
        decode_reply(header + data)
    except MarshalError:
        pass


@settings(max_examples=200)
@given(st.binary(max_size=128))
def test_ior_from_bytes_rejects_cleanly(data):
    try:
        Ior.from_string("IOR:" + data.hex())
    except MarshalError:
        pass


@settings(max_examples=100)
@given(st.binary(max_size=64))
def test_cdr_string_reader_is_total(data):
    stream = CdrInputStream(data)
    try:
        stream.read_string()
    except MarshalError:
        pass


def test_forged_giant_size_is_not_trusted_blindly():
    """A header claiming a 2 GiB body must simply leave the framer
    waiting for bytes (bounded memory: nothing is preallocated)."""
    framer = GiopFramer()
    header = b"GIOP" + bytes([1, 0, 0, 0]) + (2**31 - 1).to_bytes(4, "big")
    assert framer.feed(header) == []
    assert framer.buffered == len(header)


def test_valid_message_after_valid_message_with_fuzzed_middle_rejected():
    """Once garbage desynchronises the stream, the framer reports it
    rather than resynchronising onto a fake message boundary."""
    good = encode_request(RequestMessage(
        request_id=1, response_expected=True, object_key=b"k",
        operation="x"))
    framer = GiopFramer()
    assert framer.feed(good) == [good]
    with pytest.raises(MarshalError):
        framer.feed(b"JUNK" + good)
