"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.call_at(2.0, fired.append, "b")
    sched.call_at(1.0, fired.append, "a")
    sched.call_at(3.0, fired.append, "c")
    sched.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.call_at(1.0, fired.append, i)
    sched.run()
    assert fired == list(range(10))


def test_call_after_is_relative_to_now():
    sched = Scheduler()
    times = []
    sched.call_at(5.0, lambda: sched.call_after(2.5, lambda: times.append(sched.now)))
    sched.run()
    assert times == [7.5]


def test_cancelled_timer_does_not_fire():
    sched = Scheduler()
    fired = []
    timer = sched.call_at(1.0, fired.append, "x")
    timer.cancel()
    sched.run()
    assert fired == []
    assert not timer.active


def test_run_until_time_bound_leaves_future_events_queued():
    sched = Scheduler()
    fired = []
    sched.call_at(1.0, fired.append, "early")
    sched.call_at(10.0, fired.append, "late")
    sched.run(until=5.0)
    assert fired == ["early"]
    assert sched.now == 5.0
    sched.run()
    assert fired == ["early", "late"]


def test_scheduling_in_the_past_raises():
    sched = Scheduler()
    sched.call_at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.call_at(1.0, lambda: None)


def test_negative_delay_raises():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.call_after(-1.0, lambda: None)


def test_run_until_predicate():
    sched = Scheduler()
    state = {"n": 0}

    def bump():
        state["n"] += 1
        if state["n"] < 5:
            sched.call_after(1.0, bump)

    sched.call_after(1.0, bump)
    sched.run_until(lambda: state["n"] >= 3)
    assert state["n"] == 3
    assert sched.now == 3.0


def test_run_until_raises_on_quiescence_without_condition():
    sched = Scheduler()
    sched.call_after(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.run_until(lambda: False)


def test_run_until_raises_on_timeout():
    sched = Scheduler()

    def forever():
        sched.call_after(1.0, forever)

    sched.call_after(1.0, forever)
    with pytest.raises(SimulationError):
        sched.run_until(lambda: False, timeout=10.0)


def test_event_budget_guards_against_livelock():
    sched = Scheduler()

    def forever():
        sched.call_soon(forever)

    sched.call_soon(forever)
    with pytest.raises(SimulationError):
        sched.run(max_events=1000)


def test_step_runs_single_event():
    sched = Scheduler()
    fired = []
    sched.call_at(1.0, fired.append, 1)
    sched.call_at(2.0, fired.append, 2)
    assert sched.step()
    assert fired == [1]
    assert sched.step()
    assert not sched.step()
