"""Per-group adaptive style policy, driven by the time-series layer.

The regression that motivated feeding the StyleManager from
``series.gateway.group.*`` instead of the global scalars: two groups
with very different load share one domain and one gateway.  The hot
group floods through a window-1 admission queue, so *its* requests see
big queueing latencies; the cool group's sparse requests stay fast.

* With the series registry armed, the manager judges each group by its
  own windowed latency p50 — only the hot group is demoted.
* With the global scalars (series disabled), the domain-wide latency
  histogram is dominated by the hot group's samples, and the cumulative
  p50 drags the healthy cool group down with it — both are demoted.

The second test pins the deficiency on purpose: if it starts failing,
the global fallback changed and docs/OBSERVABILITY.md needs updating.
"""

from __future__ import annotations

from repro import ReplicationStyle, World
from repro.eternal.styles import StylePolicy

from tests.helpers import external_client, make_counter_group, make_domain


def run_two_group_scenario(series):
    """Flood one of two groups sharing a gateway; let the policy act."""
    world = World(seed=310, series=series, flight=True)
    domain = make_domain(world, num_hosts=3, gateways=0)
    # Window 1 serialises admissions: the flood queues, the queue is the
    # hot group's latency.  The deep queue limit keeps sheds at zero so
    # latency is the only overload signal in play.
    domain.add_gateway(port=2809, admission_window=1,
                       admission_queue_limit=64)
    domain.await_stable()
    hot = make_counter_group(domain, name="Hot", replicas=3)
    cool = make_counter_group(domain, name="Cool", replicas=3)
    policy = StylePolicy(demote_shed_rate=1e9,      # latency-only demotion
                         demote_latency_s=0.03,
                         promote_fault_rate=1e9,    # no promotions here
                         min_dwell_s=0.0)
    domain.enable_adaptive_styles(policy=policy, groups=[hot, cool],
                                  tick_interval=0.05)
    _, hot_stub, _ = external_client(world, domain, hot, enhanced=False,
                                     host_name="hot-client")
    _, cool_stub, _ = external_client(world, domain, cool, enhanced=False,
                                      host_name="cool-client")
    flood = [hot_stub.call("increment", 1) for _ in range(30)]
    world.run_until_done(flood, timeout=240)
    # Sparse cool-group traffic on the now-idle gateway: fast, and
    # enough samples (>= min_series_samples) that its p50 is trusted.
    for _ in range(6):
        world.await_promise(cool_stub.call("increment", 1), timeout=60)
    world.run(until=world.now + 2.0)
    assert domain.gateways[0].stats["requests_shed"] == 0
    return world, hot, cool


def test_series_demotes_only_the_degraded_group():
    world, hot, cool = run_two_group_scenario(series=True)
    assert hot.info().style is ReplicationStyle.LEADER_FOLLOWER
    assert cool.info().style is ReplicationStyle.ACTIVE
    # The black box names the demoted group and carries its signals.
    switches = world.flight.events("flight.style")
    assert switches
    assert {e["detail"]["group"] for e in switches} == {hot.group_id}
    first = switches[0]["detail"]
    assert first["reason"] == "overload"
    assert first["p50"] >= 0.03


def test_global_scalars_demote_both_groups():
    world, hot, cool = run_two_group_scenario(series=False)
    assert hot.info().style is ReplicationStyle.LEADER_FOLLOWER
    assert cool.info().style is ReplicationStyle.LEADER_FOLLOWER
