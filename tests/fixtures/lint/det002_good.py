# reprolint: module=repro.core.fake
"""DET002 good fixture: explicit seeded Random instances only."""

import random


def pick(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)
    return items[0]


def pick_from_world(world, items):
    return items[world.rng.randrange(len(items))]
