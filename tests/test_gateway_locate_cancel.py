"""Tests: GIOP LocateRequest / CancelRequest handling at the gateway."""

import pytest

from repro import World
from repro.iiop import (
    GiopFramer,
    LocateStatus,
    decode_locate_reply,
    encode_cancel_request,
    encode_locate_request,
)
from repro.eternal.naming import make_object_key

from tests.helpers import external_client, make_counter_group, make_domain


def raw_gateway_connection(world, domain):
    """A raw TCP connection to the gateway, with a framer for replies."""
    host = world.add_host("prober")
    gateway = domain.gateways[0]
    state = {}
    world.tcp.connect(host, (gateway.host.name, gateway.port),
                      lambda ep: state.setdefault("ep", ep),
                      lambda exc: state.setdefault("err", exc))
    world.scheduler.run_until(lambda: state)
    endpoint = state["ep"]
    framer = GiopFramer()
    replies = []
    endpoint.on_data = lambda data: replies.extend(framer.feed(data))
    return endpoint, replies


def test_locate_request_for_known_object_is_object_here(world):
    """A real ORB probes with LocateRequest; the gateway must claim the
    object lives at its own endpoint (the client must not learn about
    the replicas behind it)."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    endpoint, replies = raw_gateway_connection(world, domain)
    key = make_object_key(domain.name, group.group_id)
    endpoint.send(encode_locate_request(77, key))
    world.scheduler.run_until(lambda: replies, timeout=30.0)
    request_id, status = decode_locate_reply(replies[0])
    assert request_id == 77
    assert status == LocateStatus.OBJECT_HERE


def test_locate_request_for_unknown_object(world):
    domain = make_domain(world, gateways=1)
    make_counter_group(domain)
    domain.await_stable()
    endpoint, replies = raw_gateway_connection(world, domain)
    endpoint.send(encode_locate_request(78, b"ftdomain/dom/424242"))
    world.scheduler.run_until(lambda: replies, timeout=30.0)
    request_id, status = decode_locate_reply(replies[0])
    assert request_id == 78
    assert status == LocateStatus.UNKNOWN_OBJECT


def test_locate_request_for_foreign_domain_key(world):
    domain = make_domain(world, gateways=1)
    make_counter_group(domain)
    domain.await_stable()
    endpoint, replies = raw_gateway_connection(world, domain)
    endpoint.send(encode_locate_request(79, b"ftdomain/elsewhere/10"))
    world.scheduler.run_until(lambda: replies, timeout=30.0)
    _, status = decode_locate_reply(replies[0])
    assert status == LocateStatus.UNKNOWN_OBJECT


def test_cancel_request_drops_pending_routing(world):
    """After a CancelRequest, the gateway no longer routes the response
    to the client socket (best-effort cancellation)."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))

    # Next request: intercept the gateway's forward so the response is
    # delayed until the cancel lands first.
    original_forward = gateway._forward
    held = []
    gateway._forward = lambda pending: held.append(pending)
    promise = stub.call("increment", 10)
    world.run(until=world.now + 0.1)  # request reaches gateway, is held
    assert held
    # The client cancels (same connection, same request id).
    connection = orb._connections[next(iter(orb._connections))]
    request_id = connection.pending_request_ids()[-1]
    connection.endpoint.send(encode_cancel_request(request_id))
    world.run(until=world.now + 0.1)
    assert gateway.stats.get("cancels") == 1
    # Now let the invocation proceed: it executes in the domain, but the
    # gateway has no pending entry; the response is cached, not routed.
    gateway._forward = original_forward
    gateway._forward(held[0])
    world.run(until=world.now + 1.0)
    assert not promise.done  # no reply was written to the client socket
    from tests.helpers import replica_counts
    assert set(replica_counts(domain, group).values()) == {11}


def test_cancel_for_unknown_connection_is_ignored(world):
    domain = make_domain(world, gateways=1)
    make_counter_group(domain)
    domain.await_stable()
    endpoint, replies = raw_gateway_connection(world, domain)
    endpoint.send(encode_cancel_request(5))
    world.run(until=world.now + 0.2)
    # The stat is declared up front (no lazy creation) and must not
    # move for a cancel on a connection with no identified client.
    assert domain.gateways[0].stats["cancels"] == 0
    assert domain.gateways[0].metrics.counter(
        "gateway.req.cancelled").value == 0
    assert endpoint.open  # the gateway did not kill the connection
