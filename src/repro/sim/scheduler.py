"""Deterministic discrete-event scheduler (calendar-queue kernel).

Every moving part of the reproduction — simulated TCP, Totem token
rotation, replica execution, crash/recovery fault injection — runs on a
single instance of :class:`Scheduler`.  Events scheduled for the same
simulated time fire in the order they were scheduled (a monotonically
increasing tie-break counter), which makes every run exactly
reproducible for a given seed and script of events.

The kernel is a two-tier calendar queue tuned for the protocol-timer
regime (dominant sub-10ms delays, deep queues at gateway-farm scale):

* **Tier 1 — slot buckets.**  Simulated time is divided into fixed
  slots of ``slot_width`` seconds; each occupied slot owns an unsorted
  list of event entries.  Scheduling is an O(1) dict lookup + append
  instead of an O(log n) heap sift, and a whole same-slot cohort is
  sorted and drained in one batch with a tight tuple-unpacking loop.
* **Tier 2 — slot heap.**  Occupied slot indices live in a small int
  min-heap, so far-future timers cost one heap entry per *slot*, not
  per event, and the drain always knows the globally next slot.

Determinism argument: ``int(t * inv)`` is monotone non-decreasing in
``t`` (multiplication by a positive constant and truncation both
preserve order), so slot order respects time order; within a slot the
bucket is sorted by the exact ``(time, tiebreak)`` key before draining.
Events scheduled *into the currently draining slot* are placed by
binary insertion; their key is strictly greater than every entry
already consumed (``time >= now`` and the tiebreak counter is
monotone), so the list iterator meets them at their correct sorted
position.  The firing order is therefore byte-for-byte the order the
pre-overhaul binary-heap kernel (preserved as
:class:`repro.sim.reference_scheduler.ReferenceScheduler`) produces —
a property enforced by the twin-kernel differential harness in
``tests/test_scheduler_differential.py``.

Allocation is kept off the hot paths: entries are plain tuples carrying
``(time, tiebreak, timer_or_None, fn, args)``; ``post`` schedules
fire-and-forget events (network datagram deliveries) with **no** Timer
object at all, and ``call_every`` re-arms periodic timers inside the
drain loop, eliminating the per-period Python re-scheduling call.
Instrumentation stays lazy: ``attach_metrics`` exports plain int
attributes through callback-backed counters, so metrics cost nothing
on the scheduling fast paths.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

# Compaction only pays for itself once the queue is non-trivial.
_COMPACT_MIN_QUEUE = 64
# Default calendar slot width (seconds).  Wide enough that protocol
# timers batch into same-slot cohorts, narrow enough that `run(until=)`
# rarely splits a bucket.
_SLOT_WIDTH = 0.008

# An entry is (time, tiebreak, timer_or_None, fn, args).
_Entry = Tuple[float, int, Optional["Timer"], Callable[..., Any], tuple]


class Timer:
    """Handle for a scheduled callback; cancellable until it fires.

    ``_tb`` is the authoritative tiebreak of the timer (its bucket
    entry is live iff the entry's tiebreak equals it; ``cancel`` poisons
    it to -1 so one int comparison covers cancelled, superseded and
    lazily rescheduled entries alike).  ``_queued_time``/``_queued_tb``
    describe the newest entry actually pushed; they differ from the
    authoritative position only while a lazy ``reschedule`` to a later
    time is pending, in which case the stale entry re-pushes the timer
    at its authoritative key when it surfaces.  ``interval`` is set for
    ``call_every`` timers, which the drain loop re-arms in place.
    """

    __slots__ = ("time", "fn", "args", "interval", "cancelled", "fired",
                 "_tb", "_queued_time", "_queued_tb", "_sched")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.interval: Optional[float] = None
        self.cancelled = False
        self.fired = False
        self._tb = -1
        self._queued_time = time
        self._queued_tb = -1
        self._sched: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self._tb = -1
        if self._sched is not None:
            self._sched._note_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Timer t={self.time:.6f} {name} {state}>"


class Scheduler:
    """Calendar-queue event loop with deterministic same-time ordering."""

    def __init__(self, slot_width: float = _SLOT_WIDTH) -> None:
        if slot_width <= 0:
            raise SimulationError(f"slot_width must be positive, got {slot_width}")
        self.now: float = 0.0
        self._inv = 1.0 / slot_width
        self._width = slot_width
        # slot index -> unsorted list of entries for that slot.
        self._buckets: Dict[int, List[_Entry]] = {}
        # Min-heap of occupied slot indices (disjoint from _active_slot).
        self._slot_heap: List[int] = []
        # The cohort currently being drained (sorted; entries before
        # _active_i are consumed).  Same-slot schedules insort into it.
        self._active: Optional[List[_Entry]] = None
        self._active_slot = -1
        self._active_i = 0
        self._tiebreak = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_in_queue = 0
        # Next stale count at which the compaction trigger re-evaluates;
        # keeps the cancel path to one int compare (see _note_cancelled).
        self._compact_watermark = _COMPACT_MIN_QUEUE // 2 + 1
        self.timers_rescheduled = 0
        self.queue_compactions = 0
        self.batched_posted = 0

    def attach_metrics(self, registry) -> None:
        """Export reschedule/compaction counts through a metrics registry.

        Uses callback-backed counters reading the plain int attributes,
        so the hot paths never touch a metric object.
        """
        registry.counter_fn("sched.timers.rescheduled",
                            lambda: self.timers_rescheduled)
        registry.counter_fn("sched.queue.compactions",
                            lambda: self.queue_compactions)
        registry.counter_fn("sched.post.batched",
                            lambda: self.batched_posted)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        timer = Timer.__new__(Timer)
        timer.time = time
        timer.fn = fn
        timer.args = args
        timer.interval = None
        timer.cancelled = False
        timer.fired = False
        timer._sched = self
        tb = next(self._tiebreak)
        timer._tb = tb
        timer._queued_time = time
        timer._queued_tb = tb
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, timer, fn, args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, timer, fn, args))
        else:
            self._buckets[slot] = [(time, tb, timer, fn, args)]
            heappush(self._slot_heap, slot)
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        timer = Timer.__new__(Timer)
        timer.time = time
        timer.fn = fn
        timer.args = args
        timer.interval = None
        timer.cancelled = False
        timer.fired = False
        timer._sched = self
        tb = next(self._tiebreak)
        timer._tb = tb
        timer._queued_time = time
        timer._queued_tb = tb
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, timer, fn, args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, timer, fn, args))
        else:
            self._buckets[slot] = [(time, tb, timer, fn, args)]
            heappush(self._slot_heap, slot)
        return timer

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.call_at(self.now, fn, *args)

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``call_after``: no Timer, no handle.

        One tiebreak is drawn here, exactly as ``call_after`` would, so
        ordering is identical — only the ability to cancel/reschedule
        (and the per-event allocation) is gone.  This is the datagram
        delivery path: the network never cancels an in-flight packet.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        tb = next(self._tiebreak)
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, None, fn, args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, None, fn, args))
        else:
            self._buckets[slot] = [(time, tb, None, fn, args)]
            heappush(self._slot_heap, slot)

    def post_batch(self, delay: float, fn: Callable[..., Any],
                   argss: List[tuple]) -> None:
        """Schedule ``fn(*args)`` for every ``args`` in ``argss``, all at
        ``now + delay`` — the same-time-cohort bulk push.

        Semantically identical to ``for args in argss: post(delay, fn,
        *args)``: each element draws its own consecutive tiebreak, so
        the batch fires in iteration order.  The whole cohort costs one
        slot lookup and one ``list.extend`` instead of a full scheduling
        call per event, which is what makes broadcast fan-out (one
        delivery per gateway at the same simulated instant) cheap.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if not isinstance(argss, (list, tuple)):
            argss = list(argss)
        if not argss:
            return
        self.batched_posted += len(argss)
        time = self.now + delay
        tiebreaks = itertools.islice(self._tiebreak, len(argss))
        entries = [(time, tb, None, fn, args)
                   for tb, args in zip(tiebreaks, argss)]
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.extend(entries)
        elif slot == self._active_slot:
            for entry in entries:
                insort(self._active, entry)
        else:
            self._buckets[slot] = entries
            heappush(self._slot_heap, slot)

    def call_every(self, interval: float, fn: Callable[..., Any],
                   *args: Any) -> Timer:
        """Schedule ``fn(*args)`` every ``interval`` until cancelled.

        The first firing is at ``now + interval``.  The drain loop
        re-arms the timer *before* running ``fn`` — drawing exactly one
        fresh tiebreak per period, like the chained-``call_after`` idiom
        it replaces — without a Python-level re-scheduling call per
        period.  Cancel the returned handle to stop the series.
        """
        if interval <= 0:
            raise SimulationError(
                f"call_every requires a positive interval, got {interval}")
        time = self.now + interval
        timer = Timer.__new__(Timer)
        timer.time = time
        timer.fn = fn
        timer.args = args
        timer.interval = interval
        timer.cancelled = False
        timer.fired = False
        timer._sched = self
        tb = next(self._tiebreak)
        timer._tb = tb
        timer._queued_time = time
        timer._queued_tb = tb
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, timer, fn, args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, timer, fn, args))
        else:
            self._buckets[slot] = [(time, tb, timer, fn, args)]
            heappush(self._slot_heap, slot)
        return timer

    def reschedule(self, timer: Timer, time: float) -> Timer:
        """Move a pending timer to absolute ``time`` without re-allocating.

        Exactly equivalent — including same-time ordering — to
        ``timer.cancel()`` followed by ``call_at(time, timer.fn,
        *timer.args)``: one fresh tie-break is drawn at this moment.
        The entry is only re-pushed immediately when the timer moves
        *earlier*; moves to a later time ride along until the stale
        entry surfaces, which amortises a burst of M reschedules into a
        single extra push.
        """
        if not timer.active:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        if time < self.now:
            raise SimulationError(
                f"cannot reschedule event to t={time} before now={self.now}"
            )
        timer.time = time
        tb = next(self._tiebreak)
        timer._tb = tb
        if time < timer._queued_time:
            timer._queued_time = time
            timer._queued_tb = tb
            slot = int(time * self._inv)
            bucket = self._buckets.get(slot)
            if bucket is not None:
                bucket.append((time, tb, timer, timer.fn, timer.args))
            elif slot == self._active_slot:
                insort(self._active, (time, tb, timer, timer.fn, timer.args))
            else:
                self._buckets[slot] = [(time, tb, timer, timer.fn, timer.args)]
                heappush(self._slot_heap, slot)
        self.timers_rescheduled += 1
        return timer

    def reschedule_after(self, timer: Timer, delay: float) -> Timer:
        """Move a pending timer to ``now + delay``; see ``reschedule``.

        Inlined body of ``reschedule`` — this is the once-per-token-pass
        loss-timer path, and ``delay >= 0`` makes ``time >= now``.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or timer.fired:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        time = self.now + delay
        timer.time = time
        tb = next(self._tiebreak)
        timer._tb = tb
        if time < timer._queued_time:
            timer._queued_time = time
            timer._queued_tb = tb
            slot = int(time * self._inv)
            bucket = self._buckets.get(slot)
            if bucket is not None:
                bucket.append((time, tb, timer, timer.fn, timer.args))
            elif slot == self._active_slot:
                insort(self._active, (time, tb, timer, timer.fn, timer.args))
            else:
                self._buckets[slot] = [(time, tb, timer, timer.fn, timer.args)]
                heappush(self._slot_heap, slot)
        self.timers_rescheduled += 1
        return timer

    def rearm_after(self, timer: Timer, delay: float) -> Timer:
        """Re-schedule a timer that has already *fired*, reusing the
        object.  Draws a fresh tie-break at this moment — exactly what
        ``call_after(delay, timer.fn, *timer.args)`` would consume — so
        event ordering is identical to recreating the timer; only the
        allocation is saved.  Meant for strictly periodic hot-path
        timers (e.g. the Totem token hold timer)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or not timer.fired:
            raise SimulationError(f"can only rearm a fired timer, got {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        timer.fired = False
        time = self.now + delay
        timer.time = time
        tb = next(self._tiebreak)
        timer._tb = tb
        timer._queued_time = time
        timer._queued_tb = tb
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, timer, timer.fn, timer.args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, timer, timer.fn, timer.args))
        else:
            self._buckets[slot] = [(time, tb, timer, timer.fn, timer.args)]
            heappush(self._slot_heap, slot)
        return timer

    # ------------------------------------------------------------------
    # Queue hygiene
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1
        if self._cancelled_in_queue < self._compact_watermark:
            return
        # Re-evaluate the trigger: counting live entries is O(#buckets),
        # so it runs only when the stale count crosses the watermark —
        # which is pinned at the exact point `stale > total // 2` could
        # first hold, keeping the audit contract (stale bounded by half
        # the queue) intact without per-cancel scans.
        total = sum(map(len, self._buckets.values()))
        active = self._active
        if active is not None:
            total += len(active) - self._active_i
        if (total >= _COMPACT_MIN_QUEUE
                and self._cancelled_in_queue > total // 2):
            self._compact()
        else:
            self._compact_watermark = max(total // 2 + 1,
                                          self._cancelled_in_queue + 1)

    def _compact(self) -> None:
        """Drop cancelled/duplicate entries and normalise pending lazy
        reschedules to their authoritative keys, rebuilding the calendar
        in one pass.  The active cohort is left untouched (it is being
        iterated); its handful of stale entries drain normally."""
        inv = self._inv
        active = self._active
        active_slot = self._active_slot
        fresh: Dict[int, List[_Entry]] = {}
        for bucket in self._buckets.values():
            for entry in bucket:
                time, tb, timer, fn, args = entry
                if timer is None:
                    pass  # fire-and-forget entries are always live
                elif timer._tb == tb:
                    pass  # authoritative entry
                elif not timer.cancelled and tb == timer._queued_tb:
                    # Pending lazy reschedule: normalise to the
                    # authoritative key.
                    time = timer.time
                    tb = timer._tb
                    timer._queued_time = time
                    timer._queued_tb = tb
                    entry = (time, tb, timer, fn, args)
                else:
                    continue  # cancelled or superseded duplicate
                slot = int(time * inv)
                if slot == active_slot and active is not None:
                    insort(active, entry)
                else:
                    kept = fresh.get(slot)
                    if kept is None:
                        fresh[slot] = [entry]
                    else:
                        kept.append(entry)
        heap = list(fresh)
        heapq.heapify(heap)
        self._buckets = fresh
        self._slot_heap = heap
        self._cancelled_in_queue = 0
        self._compact_watermark = _COMPACT_MIN_QUEUE // 2 + 1
        self.queue_compactions += 1

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        count = sum(map(len, self._buckets.values()))
        active = self._active
        if active is not None:
            count += len(active) - self._active_i
        return count

    @property
    def stale_entries(self) -> int:
        """Cancelled entries still sitting in the calendar."""
        return self._cancelled_in_queue

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def _checkout_bucket(self) -> bool:
        """Make ``self._active`` the cohort holding the globally next
        entry.  Returns False when nothing is queued.

        A stashed active cohort (left by ``step``/``run(until=)``/an
        exception) normally resumes directly, but if an *earlier* slot
        has been scheduled since the stash, the unconsumed remainder is
        returned to the calendar first so slots drain in order.
        """
        active = self._active
        if active is not None:
            if self._active_i >= len(active):
                self._active = None
                self._active_slot = -1
                self._active_i = 0
            else:
                heap = self._slot_heap
                if not heap or heap[0] > self._active_slot:
                    return True
                i = self._active_i
                self._buckets[self._active_slot] = active[i:] if i else active
                heappush(heap, self._active_slot)
                self._active = None
                self._active_slot = -1
                self._active_i = 0
        heap = self._slot_heap
        if not heap:
            return False
        slot = heappop(heap)
        bucket = self._buckets.pop(slot)
        if len(bucket) > 1:
            bucket.sort()
        self._active = bucket
        self._active_slot = slot
        self._active_i = 0
        return True

    def _seal_active(self) -> None:
        """Strip the consumed prefix off a stashed active cohort.

        While the loop is *stopped* mid-cohort, ``now`` can sit far
        below the unconsumed entries (a ``run(until=...)`` bound), so a
        new ``insort`` key is NOT guaranteed to exceed the consumed
        prefix — skipped garbage there may hold larger keys.  Deleting
        the prefix restores the invariant the insertion paths rely on:
        everything in ``_active`` at or past ``_active_i`` is
        unconsumed.  (While the loop is running this holds for free:
        the bucket is sorted, so every visited key is bounded by the
        firing entry's key, and a handler's insertion key — ``time >=
        now`` with a fresh maximal tie-break — always exceeds it.)
        """
        if self._active is not None and self._active_i:
            del self._active[:self._active_i]
            self._active_i = 0

    def _next_live(self) -> Optional[_Entry]:
        """Advance past garbage to the next live entry, leaving
        ``_active_i`` pointing *at* it; None when the queue is empty."""
        while True:
            if not self._checkout_bucket():
                return None
            bucket = self._active
            assert bucket is not None
            i = self._active_i
            while i < len(bucket):
                entry = bucket[i]
                timer = entry[2]
                if timer is None or timer._tb == entry[1]:
                    self._active_i = i
                    return entry
                i += 1
                if timer.cancelled:
                    if self._cancelled_in_queue:
                        self._cancelled_in_queue -= 1
                elif entry[1] == timer._queued_tb:
                    self._repush_authoritative(timer)
                # else: superseded duplicate — drop silently
            self._active = None
            self._active_slot = -1
            self._active_i = 0

    def _repush_authoritative(self, timer: Timer) -> None:
        """A lazy-reschedule entry surfaced: push the timer at its
        authoritative ``(time, tiebreak)`` key."""
        time = timer.time
        tb = timer._tb
        timer._queued_time = time
        timer._queued_tb = tb
        slot = int(time * self._inv)
        bucket = self._buckets.get(slot)
        if bucket is not None:
            bucket.append((time, tb, timer, timer.fn, timer.args))
        elif slot == self._active_slot:
            insort(self._active, (time, tb, timer, timer.fn, timer.args))
        else:
            self._buckets[slot] = [(time, tb, timer, timer.fn, timer.args)]
            heappush(self._slot_heap, slot)

    def _consume(self, entry: _Entry) -> None:
        """Fire one live entry already pointed at by ``_active_i``."""
        self._active_i += 1
        time, tb, timer, fn, args = entry
        if timer is not None:
            interval = timer.interval
            if interval is None:
                timer.fired = True
            else:
                # Periodic: re-arm before firing (fresh tiebreak first).
                ntime = time + interval
                ntb = next(self._tiebreak)
                timer.time = ntime
                timer._tb = ntb
                timer._queued_time = ntime
                timer._queued_tb = ntb
                slot = int(ntime * self._inv)
                bucket = self._buckets.get(slot)
                if bucket is not None:
                    bucket.append((ntime, ntb, timer, fn, args))
                elif slot == self._active_slot:
                    insort(self._active, (ntime, ntb, timer, fn, args))
                else:
                    self._buckets[slot] = [(ntime, ntb, timer, fn, args)]
                    heappush(self._slot_heap, slot)
        self.now = time
        self._events_processed += 1
        if args:
            fn(*args)
        else:
            fn()

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        try:
            entry = self._next_live()
            if entry is None:
                return False
            self._consume(entry)
            return True
        finally:
            self._seal_active()

    def _drain(self, budget: int) -> int:
        """Drain everything (no time bound); returns events processed.

        This is the hot loop: one sorted cohort at a time, tuple
        unpacking straight out of the bucket list, liveness decided by a
        single int comparison, and periodic timers re-armed in place.
        """
        n = 0
        ct = self._tiebreak
        inv = self._inv
        while self._checkout_bucket():
            bucket = self._active
            if self._active_i:
                # Resuming mid-cohort (after step()/run(until=)/raise):
                # generic indexed loop for the remainder.
                n = self._drain_active(n, budget, None)
                if self._active is not None:
                    return n
                continue
            i = 0
            n0 = n
            try:
                for t, tb, tm, fn, args in bucket:
                    if tm is None:
                        if n >= budget:
                            return n
                        i += 1
                        self.now = t
                        n += 1
                        self._active_i = i
                        if args:
                            fn(*args)
                        else:
                            fn()
                    elif tm._tb == tb:
                        if n >= budget:
                            return n
                        i += 1
                        itv = tm.interval
                        if itv is None:
                            tm.fired = True
                        else:
                            nt = t + itv
                            ntb = next(ct)
                            tm.time = nt
                            tm._tb = ntb
                            tm._queued_time = nt
                            tm._queued_tb = ntb
                            nslot = int(nt * inv)
                            nb = self._buckets.get(nslot)
                            if nb is not None:
                                nb.append((nt, ntb, tm, fn, args))
                            elif nslot == self._active_slot:
                                insort(bucket, (nt, ntb, tm, fn, args))
                            else:
                                self._buckets[nslot] = [(nt, ntb, tm, fn, args)]
                                heappush(self._slot_heap, nslot)
                        self.now = t
                        n += 1
                        self._active_i = i
                        if args:
                            fn(*args)
                        else:
                            fn()
                    else:
                        i += 1
                        if tm.cancelled:
                            if self._cancelled_in_queue:
                                self._cancelled_in_queue -= 1
                        elif tb == tm._queued_tb:
                            self._repush_authoritative(tm)
            finally:
                self._events_processed += n - n0
                if i >= len(bucket):
                    self._active = None
                    self._active_slot = -1
                    self._active_i = 0
                else:
                    # Stopping mid-cohort (budget or exception): seal so
                    # later insertions can't land below the resume point.
                    del bucket[:i]
                    self._active_i = 0
        return n

    def _drain_active(self, n: int, budget: int,
                      limit: Optional[float]) -> int:
        """Generic cohort drain: honours a time ``limit`` and resumes at
        ``_active_i``.  Used by ``run(until=)`` and for cohorts stashed
        mid-drain; slower than the fast loop but fully general."""
        bucket = self._active
        assert bucket is not None
        i = self._active_i
        n0 = n
        try:
            while i < len(bucket):
                entry = bucket[i]
                tm = entry[2]
                if tm is not None and tm._tb != entry[1]:
                    i += 1
                    if tm.cancelled:
                        if self._cancelled_in_queue:
                            self._cancelled_in_queue -= 1
                    elif entry[1] == tm._queued_tb:
                        self._repush_authoritative(tm)
                    continue
                t = entry[0]
                if limit is not None and t > limit:
                    break
                if n >= budget:
                    break
                i += 1
                self._active_i = i
                t, tb, tm, fn, args = entry
                if tm is not None:
                    itv = tm.interval
                    if itv is None:
                        tm.fired = True
                    else:
                        nt = t + itv
                        ntb = next(self._tiebreak)
                        tm.time = nt
                        tm._tb = ntb
                        tm._queued_time = nt
                        tm._queued_tb = ntb
                        nslot = int(nt * self._inv)
                        nb = self._buckets.get(nslot)
                        if nb is not None:
                            nb.append((nt, ntb, tm, fn, args))
                        elif nslot == self._active_slot:
                            insort(bucket, (nt, ntb, tm, fn, args))
                        else:
                            self._buckets[nslot] = [(nt, ntb, tm, fn, args)]
                            heappush(self._slot_heap, nslot)
                self.now = t
                n += 1
                if args:
                    fn(*args)
                else:
                    fn()
        finally:
            self._events_processed += n - n0
            if i >= len(bucket):
                self._active = None
                self._active_slot = -1
                self._active_i = 0
            else:
                # Stopping mid-cohort (limit, budget, or exception):
                # seal — see _seal_active for the invariant.
                del bucket[:i]
                self._active_i = 0
        return n

    def _drain_until_time(self, limit: float, budget: int) -> int:
        n = 0
        while self._checkout_bucket():
            n = self._drain_active(n, budget, limit)
            if self._active is not None:
                # Stopped on the time bound or the budget mid-cohort.
                return n
        return n

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until quiescence, ``until`` time, or ``max_events``.

        Returns the number of events processed by this call.  When
        ``until`` is given the clock is advanced to ``until`` even if the
        queue drains earlier, so follow-up ``call_after`` calls measure
        from the bound.
        """
        if self._running:
            raise SimulationError("scheduler re-entered: run() called from an event")
        self._running = True
        try:
            if until is None:
                processed = self._drain(max_events)
            else:
                processed = self._drain_until_time(until, max_events)
            if processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events): likely a livelock"
                )
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until ``predicate()`` is true; raise on simulated timeout.

        Mirrors ``run`` exactly: re-entry from an event handler raises
        instead of corrupting the loop; the deadline is checked against
        the *peeked* next event so a timeout leaves it queued rather
        than silently consuming it; and the event budget raises the
        moment it is fully spent, exactly as ``run(max_events=N)`` does
        after its N-th event.
        """
        if self._running:
            raise SimulationError(
                "scheduler re-entered: run_until() called from an event")
        self._running = True
        processed = 0
        deadline = self.now + timeout
        try:
            while True:
                # The predicate is arbitrary user code (it may cancel or
                # reschedule timers), so seal the stashed cohort before
                # every call, as at any other stopped-loop boundary.
                self._seal_active()
                if predicate():
                    break
                entry = self._next_live()
                if entry is None:
                    raise SimulationError(
                        "simulation quiesced before condition became true"
                    )
                if entry[0] > deadline:
                    raise SimulationError(
                        f"condition not reached within {timeout}s of simulated time"
                    )
                self._consume(entry)
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"event budget exhausted in run_until "
                        f"({max_events} events)")
        finally:
            self._seal_active()
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self.now:.6f} queued={self.pending_events}>"
