"""Mixed client populations and client-identifier edge cases."""

import pytest

from repro import FtClientLayer, Orb, World

from tests.helpers import (
    external_client,
    make_counter_group,
    make_domain,
    replica_counts,
)


def test_plain_and_enhanced_clients_coexist(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, plain, _ = external_client(world, domain, group, enhanced=False,
                                  host_name="plain")
    _, enhanced, _ = external_client(world, domain, group, enhanced=True,
                                     host_name="enhanced")
    promises = [plain.call("increment", 1), enhanced.call("increment", 1),
                plain.call("increment", 1), enhanced.call("increment", 1)]
    world.run_until_done(promises, timeout=600)
    assert sorted(p.result() for p in promises) == [1, 2, 3, 4]
    gateway = domain.gateways[0]
    kinds = {type(cid) for cid in gateway._conn_ids.values()}
    assert kinds == {int, str}  # one counter id, one uid


def test_counter_partitioning_prevents_cross_gateway_aliasing(world):
    """An engineering improvement over the paper's plain counters: each
    gateway's counter space is disjoint, so two plain clients connected
    to two different gateways can never be confused for each other even
    though both are 'client 1' of their gateway."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    host_a = world.add_host("via-gw0")
    host_b = world.add_host("via-gw1")
    orb_a = Orb(world, host_a, request_timeout=None)
    orb_b = Orb(world, host_b, request_timeout=None)
    gw0, gw1 = domain.gateways
    from repro.iiop import Ior
    from repro.eternal.naming import make_object_key
    key = make_object_key(domain.name, group.group_id)
    stub_a = orb_a.string_to_object(
        Ior.for_endpoints(group.interface.repo_id,
                          [(gw0.host.name, gw0.port)], key), group.interface)
    stub_b = orb_b.string_to_object(
        Ior.for_endpoints(group.interface.repo_id,
                          [(gw1.host.name, gw1.port)], key), group.interface)
    world.run_until_done([stub_a.call("increment", 1),
                          stub_b.call("increment", 1)], timeout=600)
    ids_a = {cid for cid in gw0._conn_ids.values()}
    ids_b = {cid for cid in gw1._conn_ids.values()}
    assert ids_a and ids_b
    assert ids_a.isdisjoint(ids_b)
    world.run(until=world.now + 0.3)
    assert set(replica_counts(domain, group).values()) == {2}


def test_same_identity_same_request_id_is_a_reinvocation(world):
    """Section 3.5 semantics, precisely: a request arriving on a NEW
    connection with the SAME client uid, incarnation and request id is a
    *reinvocation* — the gateway serves the original cached response and
    nothing re-executes.  (A genuinely new client process must bump its
    incarnation; see test_client_interceptor.)"""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    ior = domain.ior_for(group).to_string()
    orb1 = Orb(world, host, request_timeout=None)
    layer1 = FtClientLayer(orb1, client_uid="roamer")
    stub1 = layer1.string_to_object(ior, group.interface)
    assert world.await_promise(stub1.call("increment", 1), timeout=600) == 1
    # New connection, same identity and incarnation; the fresh ORB's
    # request ids restart at 1 — colliding with the first request.
    orb2 = Orb(world, host, request_timeout=None)
    layer2 = FtClientLayer(orb2, client_uid="roamer")
    stub2 = layer2.string_to_object(ior, group.interface)
    assert world.await_promise(stub2.call("increment", 1), timeout=600) == 1
    world.run(until=world.now + 0.5)
    assert set(replica_counts(domain, group).values()) == {1}  # exactly once
    # A non-colliding request id executes normally.
    assert world.await_promise(stub2.call("increment", 1), timeout=600) == 2


def test_many_clients_ids_remain_unique(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    stubs = []
    for i in range(6):
        _, stub, _ = external_client(world, domain, group,
                                     enhanced=(i % 2 == 0),
                                     host_name=f"c{i}")
        stubs.append(stub)
    promises = [stub.call("increment", 1) for stub in stubs]
    world.run_until_done(promises, timeout=600)
    ids = list(gateway._conn_ids.values())
    assert len(ids) == len(set(ids)) == 6
