"""Dynamic race detector: same-sim-time collisions & tie-break sweeps.

The static rules prove nothing *reads* nondeterministic inputs; this
module attacks the subtler hazard — code that accidentally depends on
the scheduler's same-time **tie-break order**.  Events that fire at
the same simulated instant model things that are genuinely concurrent
in the real system (datagrams from different senders racing into a
host), so the reproduction's goldens must not change if their order
does.  "Goldens are byte-identical" is an observed fact of one
ordering; the sweep turns it into a verified property of *every
ordering the simulation does not promise*.

Three pieces:

* :class:`RaceRecorder` — observes every same-time cohort (two or
  more live events at one instant) as the run executes.
* :class:`CohortPermuter` — produces alternative legal orders for a
  cohort.  *Legal* is the crux: the simulated network promises FIFO
  per source (``Network.send``/``broadcast`` docstrings), and a local
  timer's order against same-time arrivals is observable behaviour
  (a crash at t must still kill in-flight datagrams that would land
  at t behind it).  So the permuter reorders **only network-arrival
  events from different source hosts**, within runs uninterrupted by
  non-network events; per-source order and every barrier stays fixed.
  That is exactly the set of orderings a real LAN could produce.
* :class:`RaceScheduler` — a scheduler that extracts each same-time
  cohort before firing it, records the collision, and applies the
  permuter.  It subclasses the pre-overhaul binary-heap kernel
  (:class:`~repro.sim.reference_scheduler.ReferenceScheduler`), whose
  single sorted queue makes cohort extraction trivial; the twin-kernel
  differential harness (``tests/test_scheduler_differential.py``)
  proves that kernel order-identical to the production calendar-queue
  scheduler, so sweep verdicts transfer.  With no permuter it replays
  the identity order and is observationally equivalent to the base
  scheduler (the only divergence channel is the *host-side*
  ``sched.queue.compactions`` hygiene counter, whose trigger reads
  transient queue depth; :func:`drop_metric_series` normalises it
  away before comparison).

:func:`permutation_sweep` drives a scenario once on the plain
scheduler, once in identity-replay mode, and once per permutation
seed, then compares the returned artifacts byte-for-byte.
``tools/race_sweep.py`` runs it over the golden scenarios; the CI job
uploads its JSON report.
"""

from __future__ import annotations

import heapq
import json
import random
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..errors import SimulationError
from ..sim.reference_scheduler import ReferenceScheduler, ReferenceTimer
from ..sim.world import SchedulerLike

QueueEntry = Tuple[float, Any, ReferenceTimer]
ScenarioFn = Callable[[Optional[SchedulerLike]], Mapping[str, str]]

#: Host-side hygiene series whose trigger reads transient queue depth;
#: excluded from sweep comparisons (it is not simulation-visible).
VOLATILE_SERIES: Tuple[str, ...] = ("sched.queue.compactions",)

#: Transport-*effort* series: how hard the stack worked, not what it
#: agreed on.  Cross-source arrival order legitimately changes Totem's
#: recovery work — a member that sees a gap requests retransmission,
#: retransmissions are extra broadcasts, extra broadcasts are extra
#: datagrams and timer churn — so these counters may differ between
#: legal orderings even though every *semantic* series (``totem.msg.*``,
#: ``gateway.*``, ``rm.*``, ``client.*``, ``fault.*``) and the golden
#: delivery traces stay byte-identical.  The sweep compares them
#: separately: a delta here is reported as informational, never as a
#: divergence.
EFFORT_SERIES: Tuple[str, ...] = (
    "net.bytes.sent",
    "net.datagrams.sent",
    "net.datagrams.delivered",
    "sched.timers.rescheduled",
    "sched.post.batched",
    "totem.broadcasts",
    "totem.datagrams",
    "totem.bytes.broadcast",
    "totem.broadcast.batched_deliveries",
    "totem.retransmit.count",
    "totem.gap.skipped",
)

#: Artifact keys with this prefix carry effort series: the sweep
#: records their deltas but does not fail on them.
EFFORT_ARTIFACT_PREFIX = "effort:"


def _label(timer: ReferenceTimer) -> str:
    qual = getattr(timer.fn, "__qualname__", repr(timer.fn))
    lane = _lane_of(timer)
    return f"{qual}[src={lane[1]}]" if lane is not None else qual


def _lane_of(timer: ReferenceTimer) -> Optional[Tuple[str, str]]:
    """FIFO lane of a network-arrival event (its source host), or None
    for barrier events whose order must not move."""
    qual = getattr(timer.fn, "__qualname__", "")
    if qual.endswith("Network._arrive"):
        return ("net", timer.args[0])
    return None


class RaceRecorder:
    """Collects same-sim-time event collisions as a run executes."""

    def __init__(self, max_records: int = 10_000) -> None:
        self.max_records = max_records
        self.collisions: List[Tuple[float, Tuple[str, ...]]] = []
        self.total_cohorts = 0
        self.colliding_events = 0
        self.multi_lane_cohorts = 0

    def record(self, time: float, cohort: Sequence[QueueEntry]) -> None:
        self.total_cohorts += 1
        self.colliding_events += len(cohort)
        lanes = {_lane_of(entry[2]) for entry in cohort}
        if len(lanes - {None}) > 1:
            self.multi_lane_cohorts += 1
        if len(self.collisions) < self.max_records:
            self.collisions.append(
                (time, tuple(_label(entry[2]) for entry in cohort)))

    def summary(self) -> Dict[str, Any]:
        return {
            "cohorts": self.total_cohorts,
            "colliding_events": self.colliding_events,
            "multi_lane_cohorts": self.multi_lane_cohorts,
            "recorded": len(self.collisions),
        }


class CohortPermuter:
    """Reorders cross-source network arrivals inside one cohort.

    Within a cohort (identity tie-break order), maximal runs of
    consecutive network-arrival events are regrouped by source lane
    (preserving per-lane order — the network's FIFO promise) and the
    lanes are concatenated in a seeded-shuffled order.  Non-network
    events are barriers: they keep their exact position, and no
    arrival crosses one (a same-time crash/timeout firing between two
    arrivals is an ordering the code *is* allowed to observe).
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.permuted_runs = 0
        self.changed_cohorts = 0

    def permute(self, time: float,
                cohort: List[QueueEntry]) -> List[QueueEntry]:
        out: List[QueueEntry] = []
        run: List[Tuple[Tuple[str, str], QueueEntry]] = []
        for entry in cohort:
            lane = _lane_of(entry[2])
            if lane is None:
                out.extend(self._permute_run(run))
                run = []
                out.append(entry)
            else:
                run.append((lane, entry))
        out.extend(self._permute_run(run))
        if any(a is not b for a, b in zip(out, cohort)):
            self.changed_cohorts += 1
        return out

    def _permute_run(
            self, run: List[Tuple[Tuple[str, str], QueueEntry]]
    ) -> List[QueueEntry]:
        if len(run) < 2:
            return [entry for _, entry in run]
        order: List[Tuple[str, str]] = []
        groups: Dict[Tuple[str, str], List[QueueEntry]] = {}
        for lane, entry in run:
            bucket = groups.get(lane)
            if bucket is None:
                groups[lane] = [entry]
                order.append(lane)
            else:
                bucket.append(entry)
        if len(order) > 1:
            self._rng.shuffle(order)
            self.permuted_runs += 1
        return [entry for lane in order for entry in groups[lane]]

    def summary(self) -> Dict[str, Any]:
        return {"seed": self.seed, "permuted_runs": self.permuted_runs,
                "changed_cohorts": self.changed_cohorts}


class RaceScheduler(ReferenceScheduler):
    """Scheduler that surfaces and (optionally) permutes same-time ties.

    Pops each same-time cohort off the heap before firing it, records
    collisions into its :class:`RaceRecorder`, and lets a
    :class:`CohortPermuter` reorder the cohort.  New events scheduled
    *while* a cohort fires land in the heap and form a follow-up
    cohort at the same instant — exactly the base scheduler's
    semantics, where a just-scheduled event always fires after every
    already-queued same-time event.
    """

    def __init__(self, permuter: Optional[CohortPermuter] = None,
                 recorder: Optional[RaceRecorder] = None) -> None:
        super().__init__()
        self.permuter = permuter
        self.recorder = recorder if recorder is not None else RaceRecorder()
        self._ready: Deque[QueueEntry] = deque()

    # -- cohort plumbing ------------------------------------------------

    def _refill(self, until: Optional[float]) -> bool:
        """Extract the next same-time cohort into ``_ready``."""
        queue = self._queue
        while True:
            while queue:
                time, tiebreak, timer = queue[0]
                if timer.cancelled or (time, tiebreak) != timer._key:
                    heapq.heappop(queue)
                    self._pop_stale(time, tiebreak, timer)
                    continue
                break
            if not queue:
                return False
            t0 = queue[0][0]
            if until is not None and t0 > until:
                return False
            cohort: List[QueueEntry] = []
            while queue and queue[0][0] == t0:
                time, tiebreak, timer = heapq.heappop(queue)
                if timer.cancelled or (time, tiebreak) != timer._key:
                    # May re-push a lazily rescheduled timer at t0; the
                    # loop condition re-reads the head and collects it.
                    self._pop_stale(time, tiebreak, timer)
                    continue
                cohort.append((time, tiebreak, timer))
            if not cohort:
                continue
            if len(cohort) > 1:
                self.recorder.record(t0, cohort)
                if self.permuter is not None:
                    cohort = self.permuter.permute(t0, cohort)
            self._ready.extend(cohort)
            return True

    def _next_live(self, until: Optional[float]) -> Optional[QueueEntry]:
        """Next live ready entry, refilling cohorts as needed."""
        while True:
            while self._ready:
                time, tiebreak, timer = self._ready[0]
                if timer.cancelled or (time, tiebreak) != timer._key:
                    self._ready.popleft()
                    self._pop_stale(time, tiebreak, timer)
                    continue
                if until is not None and time > until:
                    return None
                return (time, tiebreak, timer)
            if not self._refill(until):
                return None

    def _fire(self, entry: QueueEntry) -> None:
        self._ready.popleft()
        time, _, timer = entry
        self.now = time
        timer.fired = True
        self._events_processed += 1
        timer.fn(*timer.args)

    # -- loop overrides (same contracts as the base class) --------------

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._ready)

    def step(self) -> bool:
        entry = self._next_live(None)
        if entry is None:
            return False
        self._fire(entry)
        return True

    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> int:
        if self._running:
            raise SimulationError(
                "scheduler re-entered: run() called from an event")
        self._running = True
        processed = 0
        try:
            while processed < max_events:
                entry = self._next_live(until)
                if entry is None:
                    break
                self._fire(entry)
                processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events): "
                    "likely a livelock")
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(self, predicate: Callable[[], bool],
                  timeout: float = 60.0,
                  max_events: int = 10_000_000) -> None:
        deadline = self.now + timeout
        processed = 0
        while not predicate():
            entry = self._next_live(None)
            if entry is None:
                raise SimulationError(
                    "simulation quiesced before condition became true")
            if entry[0] > deadline:
                raise SimulationError(
                    f"condition not reached within {timeout}s of "
                    "simulated time")
            self._fire(entry)
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exhausted in run_until")


# ----------------------------------------------------------------------
# Sweep driver
# ----------------------------------------------------------------------


def drop_metric_series(metrics_json: str,
                       names: Sequence[str] = VOLATILE_SERIES) -> str:
    """Canonical metrics JSON minus the named series (re-serialized in
    the exporter's canonical byte form)."""
    data = json.loads(metrics_json)
    dropped = set(names)
    data["metrics"] = {
        key: value for key, value in data["metrics"].items()
        if key.split("{")[0] not in dropped}
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def partition_metric_series(metrics_json: str) -> Tuple[str, str]:
    """Split canonical metrics JSON into (semantic, effort) halves.

    The semantic half drops :data:`VOLATILE_SERIES` and
    :data:`EFFORT_SERIES` and must survive any legal tie-break order
    byte-for-byte; the effort half holds just the effort series, whose
    deltas the sweep reports without failing.
    """
    data = json.loads(metrics_json)
    effort_names = set(EFFORT_SERIES)
    volatile = set(VOLATILE_SERIES)
    semantic: Dict[str, Any] = {}
    effort: Dict[str, Any] = {}
    for key, value in data["metrics"].items():
        base = key.split("{")[0]
        if base in volatile:
            continue
        (effort if base in effort_names else semantic)[key] = value
    kept = dict(data)
    kept["metrics"] = semantic
    return (json.dumps(kept, sort_keys=True, separators=(",", ":")),
            json.dumps(effort, sort_keys=True, separators=(",", ":")))


@dataclass
class SweepRun:
    """One scenario execution inside a sweep."""

    label: str
    artifacts: Dict[str, str]
    recorder: Optional[Dict[str, Any]] = None
    permuter: Optional[Dict[str, Any]] = None
    divergences: Dict[str, str] = field(default_factory=dict)
    effort_deltas: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class PermutationReport:
    """Outcome of one :func:`permutation_sweep`."""

    scenario: str
    runs: List[SweepRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def divergent_runs(self) -> List[SweepRun]:
        return [run for run in self.runs if not run.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "runs": [{
                "label": run.label,
                "artifact_bytes": {k: len(v)
                                   for k, v in sorted(run.artifacts.items())},
                "collisions": run.recorder,
                "permutation": run.permuter,
                "divergences": dict(sorted(run.divergences.items())),
                "effort_deltas": dict(sorted(run.effort_deltas.items())),
            } for run in self.runs],
        }


def _effort_delta(left: Optional[str], right: Optional[str]) -> Any:
    """Per-series (baseline, run) values for an effort artifact delta."""
    try:
        base = json.loads(left) if left else {}
        cur = json.loads(right) if right else {}
    except ValueError:
        return _first_difference(left or "", right or "")
    return {
        key: {"baseline": base.get(key, {}).get("value"),
              "run": cur.get(key, {}).get("value")}
        for key in sorted(set(base) | set(cur))
        if base.get(key) != cur.get(key)}


def _first_difference(a: str, b: str) -> str:
    if len(a) != len(b):
        note = f"length {len(a)} != {len(b)}"
    else:
        note = "same length"
    for index, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            lo = max(0, index - 40)
            return (f"{note}; first diff at byte {index}: "
                    f"...{a[lo:index + 40]!r} vs ...{b[lo:index + 40]!r}")
    return f"{note}; one is a prefix of the other"


def permutation_sweep(scenario: ScenarioFn, name: str = "scenario",
                      permutation_seeds: Sequence[int] = (1, 2, 3)
                      ) -> PermutationReport:
    """Run ``scenario`` under identity and permuted tie-break orders.

    ``scenario(scheduler)`` builds a world around the given scheduler
    (or a default one when None) and returns a mapping of artifact
    name -> canonical string.  Metrics artifacts should be split with
    :func:`partition_metric_series`: the semantic half under a plain
    key, the effort half under an ``effort:``-prefixed key.  Every
    run's artifacts are compared byte-for-byte against the
    plain-scheduler baseline; plain-key differences are divergences
    (the sweep fails), ``effort:`` differences are recorded as
    informational deltas.
    """
    report = PermutationReport(scenario=name)
    baseline = dict(scenario(None))
    report.runs.append(SweepRun(label="baseline", artifacts=baseline))

    def execute(label: str,
                permuter: Optional[CohortPermuter]) -> SweepRun:
        scheduler = RaceScheduler(permuter=permuter)
        artifacts = dict(scenario(scheduler))
        run = SweepRun(label=label, artifacts=artifacts,
                       recorder=scheduler.recorder.summary(),
                       permuter=permuter.summary() if permuter else None)
        for key in sorted(set(baseline) | set(artifacts)):
            left = baseline.get(key)
            right = artifacts.get(key)
            if key.startswith(EFFORT_ARTIFACT_PREFIX):
                if left != right:
                    run.effort_deltas[key] = _effort_delta(left, right)
            elif left is None or right is None:
                run.divergences[key] = "artifact missing from one run"
            elif left != right:
                run.divergences[key] = _first_difference(left, right)
        return run

    report.runs.append(execute("identity", None))
    for seed in permutation_seeds:
        report.runs.append(execute(f"permutation-{seed}",
                                   CohortPermuter(seed)))
    return report
