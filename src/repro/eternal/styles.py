"""Replication styles supported by the fault tolerance infrastructure.

The paper (section 2) lists the fault tolerance properties a user can
request from the Eternal Replication Manager, including the replication
style: stateless, cold passive, warm passive, active, and active with
voting.  The LLFT line of work adds a sixth, semi-active style —
leader-follower — which this reproduction supports as a third engine
family.  The semantics implemented by the Replication Mechanisms:

============== =================================================================
STATELESS       Every replica executes every invocation; no state is
                checkpointed or transferred (there is none).  Responses are
                deduplicated at the receiver.
COLD_PASSIVE    Only the primary executes.  Backups log delivered invocations;
                the primary's state is checkpointed periodically and multicast.
                On failover the new primary restores the latest checkpoint and
                replays the logged invocations after it.
WARM_PASSIVE    Only the primary executes, and after every operation the
                primary multicasts a state update to the backups.  Failover
                replays only the (usually empty) log suffix after the last
                update.
ACTIVE          Every replica executes every invocation deterministically;
                every replica's response is multicast and duplicates are
                suppressed at the receiver (gateway or invoking group).
ACTIVE_WITH_VOTING
                As ACTIVE, but the receiver delivers a response only once a
                majority of the group's replicas returned byte-identical
                responses, masking value faults of a minority.
LEADER_FOLLOWER
                Semi-active: every replica executes every invocation (hot
                state, instant failover, no periodic state transfer), but
                only the leader — the first live host of the placement —
                multicasts responses and ordering records for its
                non-deterministic choices (nested-call interleaving);
                followers replay the records to stay byte-identical while
                staying silent.  One response per invocation on the ring
                instead of N, and no voting wait.
============== =================================================================

Because ``is_active`` historically conflated "executes everywhere" with
"participates in voting/response logic", the predicate is split into
orthogonal properties.  The full matrix:

=================== ========= ============ =========== ======== ==========
style               executes_ responds_    is_semi_    needs_   has_state
                    everywhere from_all    active      voting
=================== ========= ============ =========== ======== ==========
STATELESS           yes       yes          no          no       no
COLD_PASSIVE        no        no           no          no       yes
WARM_PASSIVE        no        no           no          no       yes
ACTIVE              yes       yes          no          no       yes
ACTIVE_WITH_VOTING  yes       yes          no          yes      yes
LEADER_FOLLOWER     yes       no           yes         no       yes
=================== ========= ============ =========== ======== ==========

* ``executes_everywhere`` — every live replica runs the servant for
  every delivered invocation (the ``i_execute`` decision).
* ``responds_from_all`` — every executing replica multicasts its
  response; the receiver deduplicates (and, for voting, counts).
* ``is_semi_active`` — executes everywhere but only the leader speaks;
  followers withhold responses and follow ordering records.
* ``is_passive`` — only the primary executes; backups log.
"""

from __future__ import annotations

import dataclasses
import enum


class ReplicationStyle(enum.Enum):
    STATELESS = "stateless"
    COLD_PASSIVE = "cold_passive"
    WARM_PASSIVE = "warm_passive"
    ACTIVE = "active"
    ACTIVE_WITH_VOTING = "active_with_voting"
    LEADER_FOLLOWER = "leader_follower"

    @property
    def is_passive(self) -> bool:
        return self in (ReplicationStyle.COLD_PASSIVE,
                        ReplicationStyle.WARM_PASSIVE)

    @property
    def executes_everywhere(self) -> bool:
        """Every live replica executes every delivered invocation."""
        return self in (ReplicationStyle.ACTIVE,
                        ReplicationStyle.ACTIVE_WITH_VOTING,
                        ReplicationStyle.STATELESS,
                        ReplicationStyle.LEADER_FOLLOWER)

    @property
    def responds_from_all(self) -> bool:
        """Every executing replica multicasts its response."""
        return self in (ReplicationStyle.ACTIVE,
                        ReplicationStyle.ACTIVE_WITH_VOTING,
                        ReplicationStyle.STATELESS)

    @property
    def is_semi_active(self) -> bool:
        """Executes everywhere, but only the leader responds/orders."""
        return self is ReplicationStyle.LEADER_FOLLOWER

    @property
    def needs_voting(self) -> bool:
        return self is ReplicationStyle.ACTIVE_WITH_VOTING

    @property
    def has_state(self) -> bool:
        return self is not ReplicationStyle.STATELESS


@dataclasses.dataclass(frozen=True)
class StylePolicy:
    """Thresholds driving runtime style adaptation (`StyleManager`).

    A group whose base style is ACTIVE or ACTIVE_WITH_VOTING is demoted
    to ``demote_to`` when the domain looks overloaded — the gateways
    shed more than ``demote_shed_rate`` requests per second over a tick,
    or p50 invocation latency exceeds ``demote_latency_s`` — and
    promoted back to its base style when faults reappear (more than
    ``promote_fault_rate`` detector faults / failovers per second).
    ``min_dwell_s`` rate-limits flapping: after any observed style
    change the manager holds off for at least that long.

    With the time-series registry armed (``World(series=True)``) the
    shed-rate and latency thresholds are applied to each group's own
    windowed ``series.gateway.group.*`` series instead of the global
    scalars; ``min_series_samples`` is how many in-window latency
    observations a group must have before its p50 is trusted (fewer
    reads as healthy — sparse traffic is not overload).
    """

    demote_to: ReplicationStyle = ReplicationStyle.LEADER_FOLLOWER
    demote_shed_rate: float = 1.0
    demote_latency_s: float = 0.25
    promote_fault_rate: float = 0.5
    min_dwell_s: float = 2.0
    min_series_samples: int = 4

    def __post_init__(self) -> None:
        if not self.demote_to.has_state:
            raise ValueError("demote_to must be a stateful style")
        if self.min_dwell_s < 0:
            raise ValueError("min_dwell_s must be >= 0")
        if self.min_series_samples < 1:
            raise ValueError("min_series_samples must be >= 1")
