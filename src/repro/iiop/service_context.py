"""Vendor service contexts used by the enhanced client layer.

Section 3.5 of the paper: the thin client-side interception layer
inserts a *unique TCP/IP client identifier* into the service context
field of each IIOP request so that any gateway — not just the one the
client first connected to — can recognise the client and detect
reinvocations.  ORBs that do not understand the context ignore it.

The context id uses the vendor range; the body is a CDR encapsulation
carrying the client's globally unique identifier string and an
incarnation number (bumped when the client process restarts, so a
restarted client is not mistaken for its former self).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import MarshalError
from .cdr import CdrOutputStream, decapsulate, encapsulate
from .giop import RequestMessage, ServiceContext

# "ET" vendor prefix, service 0x01: Eternal client identification.
ETERNAL_CLIENT_ID_CONTEXT = 0x45540001


@dataclass(frozen=True)
class ClientIdContext:
    """Unique client identity carried end-to-end in IIOP requests."""

    client_uid: str
    incarnation: int = 1

    def to_service_context(self) -> ServiceContext:
        def build(out: CdrOutputStream) -> None:
            out.write_string(self.client_uid)
            out.write_ulong(self.incarnation)

        return ServiceContext(ETERNAL_CLIENT_ID_CONTEXT, encapsulate(build))

    @staticmethod
    def from_bytes(data: bytes) -> "ClientIdContext":
        stream = decapsulate(data)
        uid = stream.read_string()
        incarnation = stream.read_ulong()
        return ClientIdContext(client_uid=uid, incarnation=incarnation)


def extract_client_id(request: RequestMessage) -> Optional[ClientIdContext]:
    """Pull the Eternal client id out of a request, if present.

    Returns None for plain (non-enhanced) clients; malformed contexts
    are treated as absent, mirroring the CORBA rule that unintelligible
    service contexts are ignored.
    """
    raw = request.find_context(ETERNAL_CLIENT_ID_CONTEXT)
    if raw is None:
        return None
    try:
        return ClientIdContext.from_bytes(raw)
    except MarshalError:
        return None
