"""Interop tests: byte-order variations a foreign ORB could produce."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iiop import (
    CdrOutputStream,
    ClientIdContext,
    Ior,
    decode_request,
    encode_request,
    RequestMessage,
)
from repro.iiop.cdr import encapsulate


def test_little_endian_ior_is_readable():
    """A foreign little-endian ORB stringifies an IOR; we must parse it."""

    def build(out: CdrOutputStream) -> None:
        reference = Ior.for_endpoints("IDL:foreign/Obj:1.0",
                                      [("gw", 2809)], b"key")
        reference.encode(out)

    data = encapsulate(build, little_endian=True)
    text = "IOR:" + data.hex()
    ior = Ior.from_string(text)
    assert ior.type_id == "IDL:foreign/Obj:1.0"
    assert ior.primary_profile().address == ("gw", 2809)
    assert ior.primary_profile().object_key == b"key"


def test_little_endian_request_through_decoder():
    message = encode_request(RequestMessage(
        request_id=7, response_expected=True, object_key=b"ftdomain/d/10",
        operation="op", body=b"\x01\x02\x03\x04"), little_endian=True)
    decoded = decode_request(message)
    assert decoded.little_endian is True
    assert decoded.request_id == 7
    assert decoded.object_key == b"ftdomain/d/10"


def test_gateway_accepts_little_endian_clients(world):
    """A client whose ORB marshals little-endian still goes through the
    gateway unchanged (the gateway forwards bytes verbatim; the server
    RM decodes per the flag)."""
    from repro.iiop.giop import encode_request as enc
    from tests.helpers import external_client, make_counter_group, make_domain
    import repro.orb.orb as orb_module

    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)

    # Patch this stub's encoding to little-endian.
    original_invoke = stub.invoke

    def invoke_le(operation, args=(), timeout=None):
        # Rebuild the request exactly as Stub.invoke does, but LE.
        op = stub.interface.operation(operation)
        from repro.iiop.giop import RequestMessage as RM
        from repro.orb.dispatch import encode_arguments
        from repro.sim.world import Promise
        promise = Promise()
        request = RM(
            request_id=stub.orb.next_request_id(),
            response_expected=not op.oneway,
            object_key=stub.ior.primary_profile().object_key,
            operation=op.name,
            service_contexts=stub.requester.service_contexts(),
            body=b"",
        )
        # LE body to match the LE message.
        out_args = encode_arguments(op, list(args))
        # encode_arguments is BE; re-encode manually little-endian:
        from repro.iiop.cdr import CdrOutputStream
        from repro.iiop.types import encode_values
        out = CdrOutputStream(little_endian=True)
        encode_values(op.param_typecodes, list(args), out)
        request.body = out.getvalue()
        encoded = enc(request, little_endian=True)
        stub.requester.send(stub, op, request, encoded, promise)
        return promise

    assert world.await_promise(invoke_le("increment", [5]),
                               timeout=600) == 5
    assert world.await_promise(stub.call("value"), timeout=600) == 5


@given(st.from_regex(r"[a-z0-9/._\-]{1,60}", fullmatch=True),
       st.integers(1, 2**31 - 1))
def test_client_id_context_roundtrip_property(uid, incarnation):
    ctx = ClientIdContext(uid, incarnation)
    service_context = ctx.to_service_context()
    assert ClientIdContext.from_bytes(service_context.data) == ctx


def test_foreign_service_contexts_survive_gateway_remarshalling(world):
    """A foreign ORB may stamp vendor service contexts the gateway does
    not understand.  CORBA requires intermediaries to pass unknown
    contexts through untouched — after the gateway translates the IIOP
    request into a Totem INVOCATION, the re-marshalled request must
    carry every original context verbatim (id and bytes)."""
    from repro.eternal.messages import MsgKind
    from repro.iiop.giop import ServiceContext
    from repro.orb.orb import PlainRequester
    from tests.helpers import external_client, make_counter_group, make_domain

    foreign = [
        ServiceContext(0x42454546, b"\x00\x01\xfe\xffopaque vendor blob"),
        ServiceContext(0x12345678, b""),  # empty data must survive too
    ]

    class ForeignRequester(PlainRequester):
        def service_contexts(self, request_id=None):
            return list(foreign)

    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    stub.requester = ForeignRequester(orb)

    delivered = []
    for member in domain.members.values():
        member.on_deliver(
            lambda seq, sender, payload: delivered.append(payload))

    assert world.await_promise(stub.call("increment", 1), timeout=600) == 1
    invocations = [m for m in delivered
                   if getattr(m, "kind", None) is MsgKind.INVOCATION]
    assert invocations, "no INVOCATION crossed the ring"
    request = decode_request(invocations[0].iiop)
    carried = {(c.context_id, bytes(c.data))
               for c in request.service_contexts}
    for ctx in foreign:
        assert (ctx.context_id, ctx.data) in carried, (
            f"context {ctx.context_id:#x} lost or altered in translation")


@given(st.from_regex(r"[a-z0-9/#._\-]{1,60}", fullmatch=True),
       st.integers(1, 2**31 - 1), st.integers(0, 255))
def test_span_context_roundtrip_property(trace_id, span_id, hop):
    from repro.iiop import SpanContext, TRACE_CONTEXT, extract_trace_context

    ctx = SpanContext(trace_id, span_id, hop=hop)
    service_context = ctx.to_service_context()
    assert service_context.context_id == TRACE_CONTEXT
    request = RequestMessage(
        request_id=1, response_expected=True, object_key=b"k",
        operation="op", service_contexts=[service_context], body=b"")
    decoded = decode_request(encode_request(request))
    assert extract_trace_context(decoded) == ctx


def test_malformed_trace_context_is_ignored():
    from repro.iiop import SpanContext, TRACE_CONTEXT, extract_trace_context
    from repro.iiop.giop import ServiceContext

    request = RequestMessage(
        request_id=1, response_expected=True, object_key=b"k",
        operation="op",
        service_contexts=[ServiceContext(TRACE_CONTEXT, b"\x00\x01")],
        body=b"")
    assert extract_trace_context(request) is None
    with pytest.raises(Exception):
        SpanContext.from_bytes(b"junk")  # raw decode stays strict
