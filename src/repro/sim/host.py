"""Simulated hosts (processors) and the processes that run on them.

A :class:`Host` models one processor in Figure 1 of the paper (the
``Pi`` boxes).  Hosts can crash and later recover; crashing a host stops
every process on it and tears down its transport endpoints.  Processes
register with their host so that failure propagation is automatic.

:class:`Process` is the base class for every active component in the
reproduction (Totem members, Replication Mechanisms, gateways, client
ORBs).  It provides failure-aware timers: a timer scheduled through a
process is silently suppressed if the process has been stopped or its
host has crashed by the time the timer fires, which is exactly the
semantics a real crashed processor exhibits.
"""

from __future__ import annotations

from typing import Any, Callable, List, TYPE_CHECKING

from ..errors import ConfigurationError
from .scheduler import Scheduler, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network


class Host:
    """A processor that can run processes, crash, and recover."""

    def __init__(self, name: str, scheduler: Scheduler, network: "Network") -> None:
        self.name = name
        self.scheduler = scheduler
        self.network = network
        self.alive = True
        self.processes: List["Process"] = []
        self.crash_count = 0
        # Simulated time of the most recent crash; failure detection and
        # recovery metrics measure from this instant.
        self.last_crash_at: Any = None
        self._crash_listeners: List[Callable[["Host"], None]] = []
        self._recovery_listeners: List[Callable[["Host"], None]] = []

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def attach(self, process: "Process") -> None:
        if process not in self.processes:
            self.processes.append(process)

    def detach(self, process: "Process") -> None:
        if process in self.processes:
            self.processes.remove(process)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def on_crash(self, fn: Callable[["Host"], None]) -> None:
        """Register a callback invoked when this host crashes."""
        self._crash_listeners.append(fn)

    def on_recovery(self, fn: Callable[["Host"], None]) -> None:
        """Register a callback invoked when this host recovers."""
        self._recovery_listeners.append(fn)

    def crash(self) -> None:
        """Fail-stop this host: kill processes, break connections."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.last_crash_at = self.scheduler.now
        self.network.metrics.counter("host.crashes").inc()
        for process in list(self.processes):
            process.handle_host_crash()
        self.network.host_crashed(self)
        for fn in list(self._crash_listeners):
            fn(self)

    def recover(self) -> None:
        """Bring the host back; processes are NOT restarted automatically.

        Recovery of the software (new replicas, rejoining rings) is the
        job of the fault tolerance infrastructure, mirroring the paper's
        separation between processor recovery and replica recovery.
        """
        if self.alive:
            return
        self.alive = True
        self.network.host_recovered(self)
        for fn in list(self._recovery_listeners):
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"<Host {self.name} {state} procs={len(self.processes)}>"


class Process:
    """Base class for an active component running on a host.

    Subclasses override :meth:`handle_start` and :meth:`handle_stop`.
    Timers created via :meth:`after` are automatically ignored when the
    process is no longer running, so crashed components never act.
    """

    def __init__(self, host: Host, name: str) -> None:
        self.host = host
        self.name = name
        self.running = False
        self._timers: List[Timer] = []
        host.attach(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.host.scheduler

    @property
    def metrics(self):
        """The world-shared :class:`~repro.obs.MetricsRegistry`."""
        return self.host.network.metrics

    @property
    def audit(self):
        """The world-shared :class:`~repro.obs.AuditScope`."""
        return self.host.network.audit

    @property
    def spans(self):
        """The world-shared :class:`~repro.obs.TraceCollector`."""
        return self.host.network.spans

    @property
    def series(self):
        """The world-shared :class:`~repro.obs.SeriesRegistry`."""
        return self.host.network.series

    @property
    def flight(self):
        """The world-shared :class:`~repro.obs.FlightRecorder`."""
        return self.host.network.flight

    @property
    def alive(self) -> bool:
        """True when the process runs on a live host and was started."""
        return self.running and self.host.alive

    def start(self) -> None:
        if not self.host.alive:
            raise ConfigurationError(
                f"cannot start {self.name}: host {self.host.name} is down"
            )
        if self.running:
            return
        self.running = True
        self.handle_start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self._cancel_timers()
        self.handle_stop()

    def handle_start(self) -> None:
        """Subclass hook: the process has been started."""

    def handle_stop(self) -> None:
        """Subclass hook: the process has been stopped (or its host died)."""

    def handle_host_crash(self) -> None:
        """Called by the host when it crashes; default stops the process."""
        if self.running:
            self.running = False
            self._cancel_timers()
            self.handle_stop()
        self.host.detach(self)

    # ------------------------------------------------------------------
    # Failure-aware timers
    # ------------------------------------------------------------------

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn`` after ``delay``; suppressed if process stops."""
        timer = self.host.scheduler.call_after(delay, self._guarded, fn, *args)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]
        return timer

    def _guarded(self, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn`` only while the process is alive (timer trampoline)."""
        if self.running and self.host.alive:
            fn(*args)

    def soon(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn`` at the current time, process-guarded."""
        return self.after(0.0, fn, *args)

    def reschedule_after(self, timer: Timer, delay: float,
                         fn: Callable[..., Any], *args: Any) -> Timer:
        """Reset a recurring timer: move it in place when still pending,
        or schedule a fresh guarded timer otherwise.

        Equivalent to ``timer.cancel()`` followed by ``after(delay, fn,
        *args)`` — including same-time event ordering — but reuses the
        existing heap entry and guard closure on the hot path.  Only
        valid when ``fn``/``args`` match what the pending timer was
        created with.
        """
        if timer is not None and not timer.cancelled and not timer.fired:
            return self.host.scheduler.reschedule_after(timer, delay)
        return self.after(delay, fn, *args)

    def _cancel_timers(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name}@{self.host.name}>"
