"""Pull-style replica fault detection (the FT-CORBA FaultDetector).

Totem's membership protocol detects *processor* crashes, but a replica
can also fail while its processor stays up — a wedged servant, a
corrupted invariant.  The FT-CORBA architecture (which grew out of this
paper's system) monitors objects with FaultDetectors that periodically
ping them; here, each processor's detector invokes the optional
``health_check()`` method on every local replica.

A replica whose health check raises or returns ``False`` is declared
faulty: the detector multicasts the idempotent REMOVE_REPLICA control
message, every processor drops the replica from the group's placement
at the same point in the total order, and the Resource Manager then
restores the replication degree elsewhere — with state transferred from
a healthy replica, not the faulty one.

Servants without a ``health_check`` method are not monitored (crash
faults still covered by membership).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .messages import DomainMessage, MsgKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .replication import ReplicationMechanisms


class FaultDetector:
    """Per-processor health monitor over the local replicas."""

    def __init__(self, rm: "ReplicationMechanisms",
                 interval: float = 0.5) -> None:
        self.rm = rm
        self.interval = interval
        self.stats = {"probes": 0, "faults_detected": 0}
        self._m_probes = rm.metrics.counter("fault.detector.probes")
        self._m_faults = rm.metrics.counter("fault.detector.faults")
        # group id -> id() of the servant we reported faulty: a freshly
        # created replacement replica (new servant object) re-arms
        # monitoring for the group.
        self._reported: dict = {}
        self._schedule()

    def _schedule(self) -> None:
        if self.rm.alive:
            self.rm.after(self.interval, self._tick)

    def _tick(self) -> None:
        self._probe_all()
        self._schedule()

    def _probe_all(self) -> None:
        for group_id, record in list(self.rm.replicas.items()):
            if not record.ready:
                continue
            # reprolint: disable=DET004 -- local replica identity, never serialized
            if self._reported.get(group_id) not in (None, id(record.servant)):
                del self._reported[group_id]  # fresh replica: re-arm
            check = getattr(record.servant, "health_check", None)
            if check is None:
                continue
            self.stats["probes"] += 1
            self._m_probes.inc()
            try:
                healthy = check()
            except Exception:
                healthy = False
            if healthy is False:
                self._report_fault(group_id, record.servant)

    def _report_fault(self, group_id: int, servant) -> None:
        if group_id in self._reported:
            return  # already reported; the removal is in flight
        # reprolint: disable=DET004 -- local replica identity, never serialized
        self._reported[group_id] = id(servant)
        self.stats["faults_detected"] += 1
        self._m_faults.inc()
        self.rm.tracer.emit(
            self.rm.scheduler.now, "eternal.fault_detected",
            f"detector@{self.rm.host.name}",
            f"local replica of group {group_id} failed its health check")
        self.rm.multicast(DomainMessage(
            kind=MsgKind.REMOVE_REPLICA, source_group=0, target_group=0,
            data={"group_id": group_id, "host": self.rm.host.name},
        ))
