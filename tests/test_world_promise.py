"""Unit tests for World and Promise plumbing."""

import pytest

from repro import Promise, World
from repro.errors import SimulationError
from repro.sim import LatencyModel


def test_promise_resolve_and_result():
    p = Promise()
    assert not p.done
    p.resolve(42)
    assert p.done and not p.failed
    assert p.result() == 42
    assert p.value == 42


def test_promise_reject_raises_on_result():
    p = Promise()
    p.reject(ValueError("nope"))
    assert p.failed
    with pytest.raises(ValueError):
        p.result()


def test_promise_single_assignment():
    p = Promise()
    p.resolve(1)
    p.resolve(2)
    p.reject(ValueError())
    assert p.result() == 1


def test_promise_result_before_done_raises():
    with pytest.raises(SimulationError):
        Promise().result()


def test_on_done_fires_immediately_when_already_done():
    p = Promise()
    p.resolve(7)
    seen = []
    p.on_done(lambda pr: seen.append(pr.value))
    assert seen == [7]


def test_on_done_fires_on_completion():
    p = Promise()
    seen = []
    p.on_done(lambda pr: seen.append(pr.value))
    p.resolve(3)
    assert seen == [3]


def test_world_await_promise_drives_simulation():
    world = World(seed=1)
    p = Promise()
    world.scheduler.call_after(5.0, p.resolve, "done")
    assert world.await_promise(p) == "done"
    assert world.now == 5.0


def test_world_run_until_done_multiple():
    world = World(seed=1)
    promises = [Promise() for _ in range(3)]
    for i, p in enumerate(promises):
        world.scheduler.call_after(i + 1.0, p.resolve, i)
    world.run_until_done(promises)
    assert [p.result() for p in promises] == [0, 1, 2]


def test_world_seed_controls_rng():
    assert World(seed=5).rng.random() == World(seed=5).rng.random()
    assert World(seed=5).rng.random() != World(seed=6).rng.random()


def test_latency_model_sites():
    model = LatencyModel(local_latency=0.001, wan_latency=0.05)
    model.set_site("a1", "siteA")
    model.set_site("a2", "siteA")
    model.set_site("b1", "siteB")
    assert model.latency("a1", "a2") == 0.001
    assert model.latency("a1", "b1") == 0.05


def test_latency_model_pair_override():
    model = LatencyModel()
    model.set_site("x", "s1")
    model.set_site("y", "s2")
    model.set_pair("x", "y", 0.123)
    assert model.latency("x", "y") == 0.123
    assert model.latency("y", "x") == 0.123


def test_duplicate_host_name_rejected():
    world = World(seed=1)
    world.add_host("h")
    with pytest.raises(ValueError):
        world.add_host("h")
