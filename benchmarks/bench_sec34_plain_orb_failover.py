"""E7 (section 3.4): what gateway failure costs a plain-ORB client.

The paper argues that with existing ORBs (single usable profile, no
client identification), the gateway is a single point of failure:

1. outstanding invocations are lost with the gateway and their fate is
   unknown to the client — we show the invocation both EXECUTED inside
   the domain and produced COMM_FAILURE outside;
2. a retry through another gateway cannot be recognised as a
   reinvocation (fresh counter id) and re-executes — corrupting state;
3. a response that outlives its gateway is unroutable at any peer.

Each scenario is measured and its state damage quantified.
"""

from repro import CommFailure, World

from common import build_domain, counter_group, external_stub, replica_values


def crash_gateway_on_response(world, gateway):
    def crash_instead(_msg):
        world.faults.crash_now(gateway.host.name)
    gateway._on_domain_response = crash_instead


def run_lost_invocation():
    world = World(seed=34, trace=False)
    domain = build_domain(world, gateways=1, mirror=False)
    group = counter_group(domain)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1), timeout=600)
    crash_gateway_on_response(world, domain.gateways[0])
    promise = stub.call("increment", 10)
    failed = False
    try:
        world.await_promise(promise, timeout=600)
    except CommFailure:
        failed = True
    world.run(until=world.now + 1.0)
    values = set(replica_values(domain, group).values())
    return {
        "client_saw_comm_failure": failed,
        "domain_executed_anyway": values == {11},
        "replica_value": values.pop(),
    }


def run_duplicate_on_retry():
    world = World(seed=35, trace=False)
    domain = build_domain(world, gateways=1, mirror=False)
    group = counter_group(domain)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1), timeout=600)
    crash_gateway_on_response(world, domain.gateways[0])
    try:
        world.await_promise(stub.call("increment", 10), timeout=600)
    except CommFailure:
        pass
    world.run(until=world.now + 1.0)
    domain.add_gateway(port=2809, mirror_requests=False)
    domain.await_stable()
    retry_stub, _ = external_stub(world, domain, group, enhanced=False,
                                  host_name="browser2")
    world.await_promise(retry_stub.call("increment", 10), timeout=600)
    values = set(replica_values(domain, group).values())
    return {
        "replica_value": values.pop(),
        "expected_if_exactly_once": 11,
        "duplicated": True,
    }


def test_sec34_outstanding_invocation_lost(benchmark):
    row = benchmark.pedantic(run_lost_invocation, rounds=2, iterations=1)
    assert row["client_saw_comm_failure"]
    assert row["domain_executed_anyway"]
    benchmark.extra_info.update(row)


def test_sec34_retry_duplicates_execution(benchmark):
    row = benchmark.pedantic(run_duplicate_on_retry, rounds=1, iterations=1)
    # 1 + 10 (lost) + 10 (retry) = 21: the duplication the paper warns of.
    assert row["replica_value"] == 21
    assert row["replica_value"] != row["expected_if_exactly_once"]
    benchmark.extra_info.update(row)


def test_sec34_peer_gateway_cannot_route_orphaned_response(benchmark):
    def run():
        world = World(seed=36, trace=False)
        domain = build_domain(world, gateways=2, mirror=False)
        group = counter_group(domain)
        peer = domain.gateways[1]
        stub, _ = external_stub(world, domain, group, enhanced=False)
        crash_gateway_on_response(world, domain.gateways[0])
        try:
            world.await_promise(stub.call("increment", 5), timeout=600)
        except CommFailure:
            pass
        world.run(until=world.now + 1.0)
        return {
            "peer_responses_unexpected": peer.stats["responses_unexpected"],
            "peer_responses_delivered": peer.stats["responses_delivered"],
        }

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["peer_responses_unexpected"] >= 1
    assert row["peer_responses_delivered"] == 0
    benchmark.extra_info.update(row)
