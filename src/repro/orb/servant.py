"""Servant base class and the checkpointable-state protocol.

A servant implements an :class:`~repro.orb.idl.Interface` with ordinary
Python methods.  Two extra hooks make servants replicable by Eternal's
Logging-Recovery Mechanisms (paper section 2.2, state transfer):

* :meth:`get_state` — capture the object's application state;
* :meth:`set_state` — install previously captured state.

The defaults snapshot every public, non-callable instance attribute
(deep-copied so a checkpoint is immune to later mutation), which covers
typical value-holding servants; servants with richer state override the
pair.

A servant method that needs to make a *nested invocation* on another
replicated object writes itself as a generator and yields the call
descriptor (see :class:`NestedCall`); the Replication Mechanisms drive
the generator and send the result back in.  This is how the paper's
Figure 6 scenario (group A's method invoking group B) is expressed.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from .idl import Interface

_IMMUTABLE_SCALARS = (type(None), bool, int, float, str, bytes, complex)


def _is_immutable(value: Any) -> bool:
    """True when ``value`` is transitively immutable, so sharing it
    between a checkpoint and a live servant cannot leak mutation."""
    if isinstance(value, _IMMUTABLE_SCALARS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable(item) for item in value)
    return False


def _snapshot(state: Dict[str, Any]) -> Dict[str, Any]:
    """Detached copy of a state dict.

    Immutable-only dicts (the common counter/value servant case) are
    shared as-is — no copy can be observed.  Mutable state is detached
    via a pickle round-trip, which is substantially faster than
    ``copy.deepcopy`` for plain data; unpicklable state falls back to
    deepcopy, preserving the old behaviour exactly.
    """
    if all(_is_immutable(value) for value in state.values()):
        return dict(state)
    try:
        return pickle.loads(pickle.dumps(state, pickle.HIGHEST_PROTOCOL))
    except Exception:
        return copy.deepcopy(state)


@dataclass(frozen=True)
class NestedCall:
    """Yielded by a servant generator to invoke another object.

    ``target`` names the callee: either a stringified IOR (cross-domain,
    routed through the remote domain's gateway) or a group name that the
    hosting infrastructure resolves in its own domain.  ``interface``
    names the callee's interface; it is required for IOR targets (the
    local infrastructure cannot look a foreign interface up by group)
    and ignored for in-domain targets.
    """

    target: str
    operation: str
    args: Sequence[Any] = ()
    interface: Optional[str] = None


class Servant:
    """Base class for application objects.

    Subclasses set the class attribute ``interface`` and define one
    method per operation.  Methods receive the operation's declared
    parameters positionally and return the declared result.
    """

    interface: Interface

    def get_state(self) -> Dict[str, Any]:
        """Snapshot application state for checkpointing/state transfer.

        The snapshot is detached from the servant (immune to later
        mutation), but immutable-only state dicts skip copying
        entirely and mutable state uses a pickle round-trip instead of
        ``copy.deepcopy`` — see :func:`_snapshot`.
        """
        return _snapshot({
            name: value for name, value in vars(self).items()
            if not name.startswith("_") and not callable(value)
        })

    def set_state(self, state: Dict[str, Any]) -> None:
        """Install a snapshot produced by :meth:`get_state`.

        The installed values are detached from the caller's dict, so a
        checkpoint can be installed into several replicas (or retained
        in a log) without aliasing.
        """
        for name, value in _snapshot(state).items():
            setattr(self, name, value)

    def dispatch_local(self, operation: str, args: Sequence[Any]) -> Any:
        """Invoke ``operation`` directly (no marshalling, no nesting).

        Raises AttributeError if the method is missing; callers that
        need CORBA semantics go through the dispatcher instead.
        """
        return getattr(self, operation)(*args)
