"""The ``reprolint`` framework: AST lint rules over the source tree.

One :class:`LintRule` encodes one repo invariant (a *determinism*,
*sim-discipline*, *observability*, or *audit* contract — see
:mod:`repro.analysis.rules` and docs/STATIC_ANALYSIS.md).  The driver
parses each file once, hands every registered rule a
:class:`LintContext`, and folds the resulting :class:`Violation`
stream through the two escape hatches:

* **inline suppressions** — ``# reprolint: disable=DET001 -- why`` on
  the offending line (or alone on the line above), or
  ``# reprolint: disable-file=DET001 -- why`` anywhere for the whole
  file.  A suppression without a ``-- why`` justification is counted
  separately so the pytest gate can refuse it; a suppression that
  matches nothing is reported as *unused* so they cannot rot.
* **the committed baseline** — a JSON list of violation fingerprints
  accepted at adoption time.  Fingerprints hash the *source line
  text*, not the line number, so unrelated edits do not invalidate
  them.  This repo's baseline is empty and the gate keeps it that way.

``lint_source`` is the single-file entry point (used by the fixture
tests); ``lint_paths`` walks directories and is what the CLIs call.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple, Type, TypeVar, cast)

#: Deterministic (simulation-driven) package prefixes: code under these
#: runs inside scheduler events, so its behaviour must be a pure
#: function of the seed.
DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "repro.sim", "repro.totem", "repro.core", "repro.eternal",
    "repro.orb", "repro.iiop",
)

#: Modules that must not block, sleep, thread, or touch real sockets:
#: every one of their "I/O" operations is a simulated event.
SIM_ONLY_PREFIXES: Tuple[str, ...] = (
    "repro.sim", "repro.totem", "repro.core", "repro.eternal",
)

#: Modules whose classes own audit-registered stateful collections.
AUDIT_MODULES: Tuple[str, ...] = (
    "repro.core.gateway", "repro.core.duplicates",
    "repro.core.gateway_pool",
    "repro.eternal.replication", "repro.totem.member",
)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Z]{2,4}\d{3}(?:\s*,\s*[A-Z]{2,4}\d{3})*)"
    r"(?P<rest>.*)$")
_MODULE_RE = re.compile(r"#\s*reprolint:\s*module\s*=\s*(?P<module>[\w.]+)")
_JUSTIFY_RE = re.compile(r"--\s*(?P<why>\S.*)$")


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a source line."""

    code: str
    message: str
    path: str          # repo-relative (or as-given) posix path
    line: int          # 1-based physical line of the offending node
    col: int           # 0-based column
    snippet: str = ""  # stripped source line, for reports & fingerprints

    def fingerprint(self, index: int = 0) -> str:
        """Stable identity for baselining: path + code + line *text*.

        ``index`` disambiguates identical lines (the N-th identical
        occurrence keeps the N-th fingerprint), so baselines survive
        pure line-number drift but not content changes.
        """
        digest = hashlib.sha256(
            f"{self.path}\x00{self.code}\x00{self.snippet}\x00{index}"
            .encode("utf-8")).hexdigest()[:16]
        return f"{self.path}:{self.code}:{digest}"

    def describe(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")


@dataclass
class Suppression:
    """One parsed ``# reprolint: disable[-file]=...`` directive."""

    path: str
    line: int                    # line the directive sits on
    codes: Tuple[str, ...]
    file_level: bool
    justification: str           # text after ``--``; "" when missing
    applies_to_line: Optional[int] = None  # None for file-level
    used: bool = False

    def matches(self, violation: Violation) -> bool:
        if violation.code not in self.codes:
            return False
        if self.file_level:
            return True
        return violation.line == self.applies_to_line


class LintContext:
    """Everything one rule needs to inspect one parsed file."""

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module, config: "LintConfig") -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, code: str, message: str, node: ast.AST) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(code=code, message=message, path=self.path,
                         line=lineno, col=col,
                         snippet=self.line_text(lineno))

    def module_in(self, prefixes: Sequence[str]) -> bool:
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)


@dataclass
class LintConfig:
    """Tunable scopes and cross-file inputs for the rule pack."""

    deterministic_prefixes: Tuple[str, ...] = DETERMINISTIC_PREFIXES
    sim_only_prefixes: Tuple[str, ...] = SIM_ONLY_PREFIXES
    audit_modules: Tuple[str, ...] = AUDIT_MODULES
    #: Modules holding GIOP wire codecs: top-level ``encode_X``/
    #: ``decode_X`` functions here must pair up (FLOW003), and the
    #: ``MsgType`` octet constants defined here anchor the GIOP
    #: send/dispatch cross-check.
    giop_codec_modules: Tuple[str, ...] = ("repro.iiop.giop",)
    #: Class names treated as the domain's message-kind enums: every
    #: member must have both a live send site (``kind=MsgKind.X``) and
    #: a live dispatch site (FLOW001/FLOW002).
    msg_kind_classes: Tuple[str, ...] = ("MsgKind",)
    #: Modules whose top-level classes are Totem wire messages; each
    #: must be both constructed and dispatched somewhere in the tree.
    totem_message_modules: Tuple[str, ...] = ("repro.totem.messages",)
    #: Observability catalogue: exact metric/span names plus ``foo.*``
    #: wildcard prefixes, parsed from docs/OBSERVABILITY.md.  ``None``
    #: disables OBS001 (no doc available to check against).
    catalogue_names: Optional[Set[str]] = None
    catalogue_prefixes: Tuple[str, ...] = ()
    catalogue_source: str = ""

    def catalogued(self, name: str) -> bool:
        if self.catalogue_names is None:
            return True
        if name in self.catalogue_names:
            return True
        return any(name.startswith(p) for p in self.catalogue_prefixes)


_CATALOGUE_TOKEN_RE = re.compile(
    r"`(?P<name>[a-z0-9_]+(?:\.(?:[a-z0-9_]+|\*))+)`")


def load_catalogue(doc_path: pathlib.Path) -> Tuple[Set[str], Tuple[str, ...]]:
    """Extract backticked metric/span names (and ``x.*`` wildcard
    prefixes) from the observability catalogue document."""
    names: Set[str] = set()
    prefixes: List[str] = []
    text = doc_path.read_text(encoding="utf-8")
    for match in _CATALOGUE_TOKEN_RE.finditer(text):
        token = match.group("name")
        if token.endswith(".*"):
            prefixes.append(token[:-1])  # keep the trailing dot
        else:
            names.add(token)
    return names, tuple(sorted(set(prefixes)))


def default_config(root: Optional[pathlib.Path] = None) -> LintConfig:
    """The repo's own configuration: scopes above + the live catalogue."""
    config = LintConfig()
    base = root if root is not None else _guess_repo_root()
    if base is not None:
        doc = base / "docs" / "OBSERVABILITY.md"
        if doc.is_file():
            names, prefixes = load_catalogue(doc)
            config.catalogue_names = names
            config.catalogue_prefixes = prefixes
            config.catalogue_source = str(doc)
    return config


def _guess_repo_root() -> Optional[pathlib.Path]:
    here = pathlib.Path(__file__).resolve()
    for ancestor in here.parents:
        if (ancestor / "docs" / "OBSERVABILITY.md").is_file():
            return ancestor
    return None


class LintRule:
    """Base class: subclass, set ``code``/``name``, implement ``check``."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.code:
            _RULES[cls.code] = cls


_RULES: Dict[str, Type[LintRule]] = {}


def registered_rules() -> Dict[str, Type[LintRule]]:
    """Code -> rule class for every registered rule (imports the pack)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)
    return dict(sorted(_RULES.items()))


_CacheT = TypeVar("_CacheT")


class ProjectContext:
    """Every parsed file of one lint run, for whole-program rules.

    Expensive shared artifacts (the call graph, the protocol surface)
    are built once per run and memoised here so each project rule that
    needs them pays nothing beyond the first construction.
    """

    def __init__(self, contexts: Sequence[LintContext],
                 config: LintConfig,
                 suppressions: Optional[Dict[str, List[Suppression]]] = None
                 ) -> None:
        self.contexts = list(contexts)
        self.config = config
        #: path -> parsed suppressions of that file.  Taint analysis
        #: consults these: a sink whose line carries a justified
        #: DET001/DET002/SIM001 suppression is a sanctioned boundary
        #: and must not propagate.
        self.suppressions: Dict[str, List[Suppression]] = dict(
            suppressions or {})
        self._cache: Dict[str, object] = {}

    def cached(self, key: str, build: Callable[[], _CacheT]) -> _CacheT:
        if key not in self._cache:
            self._cache[key] = build()
        return cast(_CacheT, self._cache[key])


class ProjectRule:
    """Whole-program rule: sees every parsed file of the run at once.

    Subclass, set ``code``/``name``, implement ``check_project``.
    Violations are routed back through the owning file's inline
    suppressions and the baseline exactly like per-file findings.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.code:
            _PROJECT_RULES[cls.code] = cls


_PROJECT_RULES: Dict[str, Type[ProjectRule]] = {}


def registered_project_rules() -> Dict[str, Type[ProjectRule]]:
    """Code -> project-rule class (imports the whole-program packs)."""
    from . import callgraph as _callgraph  # noqa: F401  (registration)
    from . import protocol as _protocol    # noqa: F401  (registration)
    from . import rules as _rules          # noqa: F401  (registration)
    return dict(sorted(_PROJECT_RULES.items()))


# ----------------------------------------------------------------------
# Suppression & module-directive parsing
# ----------------------------------------------------------------------

def _comment_tokens(lines: Sequence[str]
                    ) -> Iterator[Tuple[int, int, str]]:
    """(line, col, text) of every real ``#`` comment.

    Tokenized, not regexed, so directive syntax *quoted in docstrings*
    (this repo documents itself) is never mistaken for a directive.
    Tokenize errors end the scan early; such files surface as parse
    errors through the AST pass anyway.
    """
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_suppressions(path: str, lines: Sequence[str]) -> List[Suppression]:
    found: List[Suppression] = []
    for idx, col, text in _comment_tokens(lines):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = tuple(c.strip() for c in match.group("codes").split(","))
        justify = _JUSTIFY_RE.search(match.group("rest") or "")
        file_level = match.group(1) == "disable-file"
        # A directive alone on its line guards the *next* line; one at
        # the end of a code line guards that line.
        bare = not lines[idx - 1][:col].strip()
        applies = None if file_level else (idx + 1 if bare else idx)
        found.append(Suppression(
            path=path, line=idx, codes=codes, file_level=file_level,
            justification=justify.group("why").strip() if justify else "",
            applies_to_line=applies))
    return found


def parse_module_directive(lines: Sequence[str]) -> Optional[str]:
    for idx, _, text in _comment_tokens(lines):
        if idx > 20:
            return None
        match = _MODULE_RE.search(text)
        if match is not None:
            return match.group("module")
    return None


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

class Baseline:
    """The committed set of accepted violation fingerprints."""

    SCHEMA = 1

    def __init__(self, fingerprints: Optional[Set[str]] = None) -> None:
        self.fingerprints: Set[str] = set(fingerprints or ())

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(set(data.get("fingerprints", [])))

    def to_json(self) -> str:
        payload = {"schema": self.SCHEMA,
                   "fingerprints": sorted(self.fingerprints)}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @staticmethod
    def fingerprints_for(violations: Sequence[Violation]) -> List[str]:
        """Fingerprints with per-identical-line occurrence indices."""
        seen: Dict[Tuple[str, str, str], int] = {}
        result: List[str] = []
        for violation in violations:
            key = (violation.path, violation.code, violation.snippet)
            index = seen.get(key, 0)
            seen[key] = index + 1
            result.append(violation.fingerprint(index))
        return result


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------

@dataclass
class FileResult:
    """Per-file lint outcome (before baseline filtering)."""

    path: str
    module: str
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Tuple[Violation, Suppression]] = field(
        default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    parse_error: Optional[str] = None


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    files: List[FileResult] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    #: The shared whole-program context of this run (``None`` when no
    #: project rules ran).  The CLI reuses it for ``--graph-dump`` /
    #: ``--protocol-dump`` so the dumps describe exactly the linted set.
    project: Optional[ProjectContext] = field(default=None, repr=False)

    @property
    def suppressed(self) -> List[Tuple[Violation, Suppression]]:
        return [pair for f in self.files for pair in f.suppressed]

    @property
    def unused_suppressions(self) -> List[Suppression]:
        return [s for f in self.files for s in f.suppressions if not s.used]

    @property
    def unjustified_suppressions(self) -> List[Suppression]:
        return [s for f in self.files for s in f.suppressions
                if s.used and not s.justification]

    @property
    def parse_errors(self) -> List[Tuple[str, str]]:
        return [(f.path, f.parse_error) for f in self.files
                if f.parse_error is not None]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    @property
    def files_scanned(self) -> int:
        return len(self.files)


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module path; everything after a ``src`` path component."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _lint_one(source: str, path: str, module: str, config: LintConfig,
              rules: Sequence[LintRule]
              ) -> Tuple[FileResult, Optional[LintContext]]:
    """Lint one file with the per-file rules; return the parsed context
    too (``None`` on a parse error) for the whole-program passes."""
    result = FileResult(path=path, module=module)
    lines = source.splitlines()
    directive = parse_module_directive(lines)
    if directive is not None:
        result.module = module = directive
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_error = f"{type(exc).__name__}: {exc.msg} (line {exc.lineno})"
        return result, None
    ctx = LintContext(path=path, module=module, source=source,
                      tree=tree, config=config)
    raw: List[Violation] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    raw.sort(key=lambda v: (v.line, v.col, v.code))
    result.suppressions = parse_suppressions(path, lines)
    for violation in raw:
        _file_or_suppress(result, violation)
    return result, ctx


def _file_or_suppress(result: FileResult, violation: Violation) -> None:
    """Route one violation through the file's inline suppressions."""
    for supp in result.suppressions:
        if supp.matches(violation):
            supp.used = True
            result.suppressed.append((violation, supp))
            return
    result.violations.append(violation)


def _run_project_rules(results: Sequence[FileResult],
                       contexts: Sequence[LintContext],
                       config: LintConfig,
                       project_rules: Sequence[ProjectRule]
                       ) -> Optional[ProjectContext]:
    """Run the whole-program passes and merge their violations into the
    owning files (through each file's suppressions)."""
    if not contexts:
        return None
    project = ProjectContext(
        contexts, config,
        suppressions={r.path: r.suppressions for r in results})
    by_path = {result.path: result for result in results}
    raw: List[Violation] = []
    for rule in project_rules:
        raw.extend(rule.check_project(project))
    raw.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    for violation in raw:
        owner = by_path.get(violation.path)
        if owner is None:  # defensive: rules only see linted files
            continue
        _file_or_suppress(owner, violation)
    for result in results:
        result.violations.sort(key=lambda v: (v.line, v.col, v.code))
    return project


def lint_file_contents(source: str, path: str, module: str,
                       config: LintConfig,
                       rules: Optional[Sequence[LintRule]] = None
                       ) -> FileResult:
    """Lint one already-read file; suppressions applied, no baseline."""
    active = (list(rules) if rules is not None
              else [cls() for cls in registered_rules().values()])
    result, _ = _lint_one(source, path, module, config, active)
    return result


def lint_source(source: str, path: str = "<memory>",
                module: Optional[str] = None,
                config: Optional[LintConfig] = None,
                rules: Optional[Sequence[LintRule]] = None,
                project_rules: Optional[Sequence[ProjectRule]] = None
                ) -> FileResult:
    """Single-blob entry point (fixture tests, editor integrations).

    The whole-program rules run too, over a one-file project — call
    chains, dispatch tables, and protocol surfaces wholly contained in
    the blob are analysed exactly as they would be in a full run.
    Passing an explicit (possibly empty) ``rules``/``project_rules``
    sequence narrows the run to just those rules.
    """
    if module is None:
        module = module_name_for(pathlib.Path(path))
    if config is None:
        config = default_config()
    active = (list(rules) if rules is not None
              else [cls() for cls in registered_rules().values()])
    result, ctx = _lint_one(source, path, module, config, active)
    if ctx is not None:
        if project_rules is not None:
            active_project: List[ProjectRule] = list(project_rules)
        elif rules is not None:
            active_project = []  # explicit per-file rule set: no extras
        else:
            active_project = [cls()
                              for cls in registered_project_rules().values()]
        if active_project:
            _run_project_rules([result], [ctx], config, active_project)
    return result


def iter_python_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)


def lint_paths(paths: Sequence[pathlib.Path],
               config: Optional[LintConfig] = None,
               baseline: Optional[Baseline] = None,
               root: Optional[pathlib.Path] = None) -> LintResult:
    """Lint every ``.py`` under ``paths``; apply suppressions + baseline."""
    if config is None:
        config = default_config(root)
    if baseline is None:
        baseline = Baseline()
    result = LintResult()
    rules = [cls() for cls in registered_rules().values()]
    project_rules = [cls() for cls in registered_project_rules().values()]
    contexts: List[LintContext] = []
    for file_path in iter_python_files([pathlib.Path(p) for p in paths]):
        rel = _relative_to_root(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        file_result, ctx = _lint_one(
            source, rel, module_name_for(file_path), config, rules)
        result.files.append(file_result)
        if ctx is not None:
            contexts.append(ctx)
    result.project = _run_project_rules(
        result.files, contexts, config, project_rules)
    all_new = [v for f in result.files for v in f.violations]
    matched: Set[str] = set()
    fingerprints = Baseline.fingerprints_for(all_new)
    for violation, fingerprint in zip(all_new, fingerprints):
        if fingerprint in baseline.fingerprints:
            matched.add(fingerprint)
            result.baselined.append(violation)
        else:
            result.violations.append(violation)
    result.stale_baseline = sorted(baseline.fingerprints - matched)
    return result


def _relative_to_root(path: pathlib.Path,
                      root: Optional[pathlib.Path]) -> str:
    resolved = path.resolve()
    candidates = [root] if root is not None else []
    candidates.append(pathlib.Path.cwd())
    for base in candidates:
        if base is None:
            continue
        try:
            return resolved.relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()
