"""Deterministic causal tracing: per-invocation spans across hops.

The paper's Figures 2-5 are causal-path diagrams: an IIOP request
crosses the gateway, becomes a Totem INVOCATION, is totally ordered,
executes at every replica, and its responses are de-duplicated on the
way back.  This module records that path per invocation as a tree of
**spans** on the simulated clock, collected in one per-``World``
:class:`TraceCollector`.

Design constraints, in priority order:

* **Determinism.**  Span ids come from a plain counter and every
  timestamp is simulated time, so two runs of the same seeded scenario
  export *byte-identical* traces (``tests/test_obs_tracing.py``).
* **Zero cost when disabled.**  Every instrumentation hook checks a
  single ``enabled`` boolean first and the ``trace.*`` metric counters
  are created lazily on the first span, so a disabled world produces
  byte-identical metrics snapshots and wire traffic to a build without
  tracing at all.
* **Sound nesting.**  Hops are asynchronous: a late duplicate response
  can arrive after the invocation's container span closed.  ``end``
  therefore extends already-closed *ancestors* to cover a late child,
  so the exported tree always satisfies "every child lies within its
  parent" by construction (hop-latency analysis reads the leaf hop
  spans, which are never stretched).

The collector is shared by all hosts of the world — spans opened on one
processor are routinely closed on another (e.g. the ordering-wait span
opened at the forwarding gateway ends when *any* gateway observes the
delivery), exactly mirroring how the causal path itself spans hosts.

Exporters: :meth:`TraceCollector.export_chrome` emits Chrome
``trace_event`` JSON loadable in ``about:tracing`` / Perfetto (one
process per trace, one thread per component); :meth:`export_tree`
renders an aligned text tree.  ``tools/trace_report.py`` consumes the
Chrome JSON for critical-path analysis.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flight import FlightRecorder


@dataclass
class TraceSpan:
    """One hop (or container) on an invocation's causal path."""

    span_id: int
    trace_id: str
    parent_id: int                     # 0 = root of its trace
    name: str
    source: str                        # component that opened the span
    start: float
    end: Optional[float] = None        # None while open
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class TraceCollector:
    """Per-world span recorder; the causal complement of the metrics
    registry (aggregates) and the audit scope (retention)."""

    def __init__(self, enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 flight: Optional["FlightRecorder"] = None) -> None:
        self.enabled = enabled
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._metrics = metrics
        # Optional flight recorder: span closes are high-signal events
        # for the black box (purely passive; see repro.obs.flight).
        self._flight = flight
        self.spans: List[TraceSpan] = []
        self._by_id: Dict[int, TraceSpan] = {}
        self._ids = itertools.count(1)
        self._trace_order: Dict[str, int] = {}  # trace_id -> pid (first-start order)
        self._source_order: Dict[str, int] = {}  # source -> tid
        # trace.* counters are created on the first span, never earlier:
        # a world that enables tracing but sees no traffic — and any
        # world with tracing disabled — snapshots byte-identically to a
        # build without this module (the golden-file gates rely on it).
        self._m_started = None
        self._m_closed = None
        self._m_traces = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _count_started(self, trace_id: str) -> None:
        if self._metrics is not None:
            if self._m_started is None:
                self._m_started = self._metrics.counter("trace.spans.started")
                self._m_closed = self._metrics.counter("trace.spans.closed")
                self._m_traces = self._metrics.counter("trace.traces.started")
            self._m_started.inc()
            if trace_id not in self._trace_order:
                self._m_traces.inc()

    def start(self, trace_id: str, name: str, parent: int = 0,
              source: str = "", **attrs: Any) -> int:
        """Open a span; returns its id (0 when tracing is disabled).

        ``parent`` is the enclosing span's id (0 for a trace root); it
        may live on another host — the collector is world-shared.
        """
        if not self.enabled:
            return 0
        self._count_started(trace_id)
        if trace_id not in self._trace_order:
            self._trace_order[trace_id] = len(self._trace_order) + 1
        if source not in self._source_order:
            self._source_order[source] = len(self._source_order) + 1
        span = TraceSpan(span_id=next(self._ids), trace_id=trace_id,
                         parent_id=parent, name=name, source=source,
                         start=self.clock(), attrs=dict(attrs))
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, **attrs: Any) -> None:
        """Close a span (first close wins; later closes are ignored).

        Closing at time ``t`` extends every already-closed ancestor
        whose recorded end precedes ``t``: a parent's end is the max of
        its own completion and its children's, which keeps the exported
        tree properly nested even for late asynchronous children
        (duplicate responses, TTL-reaped one-ways).
        """
        if not self.enabled or span_id == 0:
            return
        span = self._by_id.get(span_id)
        if span is None or span.end is not None:
            return
        now = self.clock()
        span.end = now
        if attrs:
            span.attrs.update(attrs)
        if self._m_closed is not None:
            self._m_closed.inc()
        flight = self._flight
        if flight is not None and flight.enabled:
            flight.record("flight.span", trace=span.trace_id, name=span.name,
                          source=span.source, dur=now - span.start)
        self._extend_ancestors(span, now)

    def _extend_ancestors(self, span: TraceSpan, now: float) -> None:
        parent = self._by_id.get(span.parent_id)
        while parent is not None:
            if parent.end is not None and parent.end < now:
                parent.end = now
            parent = self._by_id.get(parent.parent_id)

    def instant(self, trace_id: str, name: str, parent: int = 0,
                source: str = "", **attrs: Any) -> int:
        """Record a zero-duration span (an event on the causal path)."""
        span_id = self.start(trace_id, name, parent=parent, source=source,
                             **attrs)
        if span_id:
            span = self._by_id[span_id]
            span.end = span.start
            if self._m_closed is not None:
                self._m_closed.inc()
            self._extend_ancestors(span, span.start)
        return span_id

    def clear(self) -> None:
        self.spans.clear()
        self._by_id.clear()
        self._trace_order.clear()
        self._source_order.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, span_id: int) -> Optional[TraceSpan]:
        return self._by_id.get(span_id)

    def trace_ids(self) -> List[str]:
        """Trace ids in first-span order."""
        return sorted(self._trace_order, key=self._trace_order.__getitem__)

    def select(self, trace_id: Optional[str] = None,
               name: Optional[str] = None) -> List[TraceSpan]:
        """Spans filtered by trace and/or span name, in start order."""
        return [s for s in self.spans
                if (trace_id is None or s.trace_id == trace_id)
                and (name is None or s.name == name)]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def export_chrome(self) -> str:
        """Chrome ``trace_event`` JSON (canonical: sorted keys, no
        incidental whitespace — byte-identical across seeded reruns).

        One *process* per trace, one *thread* per component (span
        source); durations are "X" complete events in microseconds of
        simulated time.  Spans still open at export time get duration 0
        and ``"open": true`` in their args.
        """
        events: List[Dict[str, Any]] = []
        for trace_id, pid in self._trace_order.items():
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": trace_id}})
        for source, tid in self._source_order.items():
            events.append({"ph": "M", "name": "thread_name", "pid": 0,
                           "tid": tid, "args": {"name": source}})
        for span in self.spans:
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id:
                args["parent_id"] = span.parent_id
            if span.end is None:
                args["open"] = True
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.trace_id,
                "pid": self._trace_order.get(span.trace_id, 0),
                "tid": self._source_order.get(span.source, 0),
                "ts": _micros(span.start),
                "dur": _micros((span.end if span.end is not None
                                else span.start) - span.start),
                "args": args,
            })
        return json.dumps({"displayTimeUnit": "ms", "traceEvents": events},
                          sort_keys=True, separators=(",", ":"),
                          allow_nan=False)

    def export_tree(self) -> str:
        """Aligned text rendering, one tree per trace, children indented
        under their parents in start order."""
        if not self.spans:
            return "(no spans recorded)"
        children: Dict[int, List[TraceSpan]] = {}
        roots: Dict[str, List[TraceSpan]] = {}
        for span in self.spans:
            if span.parent_id and span.parent_id in self._by_id:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.setdefault(span.trace_id, []).append(span)
        lines: List[str] = []

        def render(span: TraceSpan, depth: int) -> None:
            indent = "  " * depth
            dur = (f"{span.duration * 1000:9.3f}ms" if span.closed
                   else "     open")
            extra = " ".join(f"{k}={v!r}" for k, v in span.attrs.items())
            label = f"{indent}{span.name}"
            lines.append(f"{label:<44} {dur}  [{span.source}] {extra}".rstrip())
            for child in children.get(span.span_id, ()):
                render(child, depth + 1)

        for trace_id in self.trace_ids():
            lines.append(f"trace {trace_id}")
            for root in roots.get(trace_id, ()):
                render(root, 1)
        return "\n".join(lines)


def _micros(seconds: float) -> int:
    """Simulated seconds -> integer microseconds (Chrome's unit)."""
    return int(round(seconds * 1e6))
