"""Tests for the Figure 4 wire headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    OperationId,
    UNUSED_CLIENT_ID,
    decode_ft_header,
    encode_ft_header,
    encode_multicast_message,
    header_overhead,
    intra_domain_header,
)
from repro.errors import MarshalError


def test_header_roundtrip_with_counter_client_id():
    data = encode_ft_header(17, 1, 12, OperationId(100, 3), 120)
    client, src, dst, op, ts, consumed = decode_ft_header(data)
    assert (client, src, dst, op, ts) == (17, 1, 12, OperationId(100, 3), 120)
    assert consumed == len(data)


def test_header_roundtrip_with_uid_client_id():
    data = encode_ft_header("ftclient/browser/1#1", 1, 12,
                            OperationId(0, 42), 99)
    client, _, _, op, _, _ = decode_ft_header(data)
    assert client == "ftclient/browser/1#1"
    assert op == OperationId(0, 42)


def test_intra_domain_header_uses_unused_sentinel():
    """Figure 4(c): messages between replicated objects set the TCP
    client identification to 'some unused value'."""
    data = intra_domain_header(3, 4, OperationId(100, 1), 120)
    client, src, dst, _, _, _ = decode_ft_header(data)
    assert client == UNUSED_CLIENT_ID
    assert (src, dst) == (3, 4)


def test_bad_client_id_tag_rejected():
    data = bytes([9]) + b"\x00" * 40
    with pytest.raises(MarshalError):
        decode_ft_header(data)


def test_full_multicast_message_layout():
    """Figure 4(b): multicast header, then FT/gateway header, then IIOP."""
    iiop = b"GIOP" + bytes(20)
    message = encode_multicast_message(
        client_id=5, source_group=1, target_group=12,
        op_id=OperationId(0, 7), timestamp=0, iiop=iiop,
        ring_generation=2, sequence_number=120, sender="gw0")
    # The IIOP payload appears intact at the end (length-prefixed).
    assert iiop in message
    assert len(message) > len(iiop) + header_overhead(5)


def test_header_overhead_is_small_and_stable():
    counter_overhead = header_overhead(client_id=7)
    unused_overhead = header_overhead()
    assert counter_overhead == unused_overhead  # both are int-encoded
    assert 20 <= counter_overhead <= 64


@given(st.one_of(st.integers(0, 2**63 - 1),
                 st.from_regex(r"[a-z/#0-9]{1,40}", fullmatch=True)),
       st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
       st.integers(0, 2**63 - 1), st.integers(0, 2**31 - 1),
       st.integers(0, 2**63 - 1))
def test_header_roundtrip_property(client, src, dst, parent_ts, child, ts):
    data = encode_ft_header(client, src, dst, OperationId(parent_ts, child), ts)
    decoded = decode_ft_header(data)
    assert decoded[:5] == (client, src, dst, OperationId(parent_ts, child), ts)
