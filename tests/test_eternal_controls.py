"""Tests for control-message idempotency and registry convergence.

The infrastructure's correctness rests on every control mutation being
idempotent (replicated managers emit redundantly) and on all processors
converging to identical registries.  These tests inject duplicate and
out-of-order control messages directly.
"""

import pytest

from repro import ReplicationStyle, World
from repro.eternal import DomainMessage, GroupInfo, MsgKind

from tests.helpers import make_counter_group, make_domain, replica_counts


def broadcast_control(domain, kind, **data):
    domain.coordinator_rm().multicast(DomainMessage(
        kind=kind, source_group=0, target_group=0, data=data))


def registries_identical(domain):
    snapshots = []
    for rm in domain.rms.values():
        if rm.alive:
            snapshots.append(tuple(
                (g.group_id, g.name, g.placement, g.version)
                for g in rm.registry.all_groups()))
    return len(set(snapshots)) == 1


def test_duplicate_group_announce_is_harmless(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 3))
    info = group.info()
    for _ in range(3):
        broadcast_control(domain, MsgKind.GROUP_ANNOUNCE, info=info)
    world.run(until=world.now + 0.5)
    # State survived, replicas not re-created, registries identical.
    assert set(replica_counts(domain, group).values()) == {3}
    assert registries_identical(domain)


def test_duplicate_add_replica_transfers_state_once(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=2)
    world.await_promise(group.invoke("increment", 5))
    spare = [h for h in domain.replica_host_names
             if h not in group.info().placement][0]
    for _ in range(3):  # every host's resource manager might emit one
        broadcast_control(domain, MsgKind.ADD_REPLICA,
                          group_id=group.group_id, host=spare)
    world.run(until=world.now + 1.0)
    assert group.info().placement.count(spare) == 1
    record = domain.rms[spare].replicas[group.group_id]
    assert record.ready and record.servant.count == 5
    transfers = sum(rm.stats["state_transfers_sent"]
                    for rm in domain.rms.values())
    assert transfers == 1
    assert registries_identical(domain)


def test_duplicate_remove_replica_is_idempotent(world):
    domain = make_domain(world)
    group = make_counter_group(domain, replicas=3, min_replicas=1)
    world.await_promise(group.invoke("increment", 1))
    victim = group.info().placement[2]
    for _ in range(2):
        broadcast_control(domain, MsgKind.REMOVE_REPLICA,
                          group_id=group.group_id, host=victim)
    world.run(until=world.now + 0.5)
    assert victim not in group.info().placement
    assert group.group_id not in domain.rms[victim].replicas
    assert registries_identical(domain)


def test_group_remove_mid_traffic(world):
    domain = make_domain(world)
    group = make_counter_group(domain, min_replicas=1)
    world.await_promise(group.invoke("increment", 1))
    broadcast_control(domain, MsgKind.GROUP_REMOVE, group_id=group.group_id)
    world.run(until=world.now + 0.5)
    for rm in domain.rms.values():
        assert group.group_id not in rm.replicas
        assert rm.registry.get(group.group_id) is None
    assert registries_identical(domain)


def test_control_for_unknown_group_is_ignored(world):
    domain = make_domain(world)
    broadcast_control(domain, MsgKind.ADD_REPLICA, group_id=424242,
                      host="dom-h0")
    broadcast_control(domain, MsgKind.REMOVE_REPLICA, group_id=424242,
                      host="dom-h0")
    broadcast_control(domain, MsgKind.GROUP_REMOVE, group_id=424242)
    world.run(until=world.now + 0.5)
    assert registries_identical(domain)


def test_stale_checkpoint_does_not_regress_state(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               checkpoint_interval=2)
    for _ in range(5):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.5)
    # Replay an old checkpoint (ts far in the past): must be ignored.
    domain.coordinator_rm().multicast(DomainMessage(
        kind=MsgKind.CHECKPOINT, source_group=group.group_id,
        target_group=group.group_id,
        data={"state": {"count": 0}, "upto_ts": 1, "version": 1}))
    world.run(until=world.now + 0.5)
    assert world.await_promise(group.invoke("value")) == 5


def test_registries_converge_after_mixed_operations(world):
    domain = make_domain(world, num_hosts=4)
    a = make_counter_group(domain, name="A", replicas=2)
    b = make_counter_group(domain, name="B", replicas=3, min_replicas=2)
    world.await_promise(a.invoke("increment", 1))
    world.await_promise(b.invoke("increment", 1))
    world.faults.crash_now(b.info().placement[0])
    world.run(until=world.now + 2.0)
    assert registries_identical(domain)
