"""Shared builders for the benchmark harness.

Every benchmark constructs a fresh deterministic :class:`World`, drives
a complete scenario, and reports two kinds of numbers:

* **wall-clock** timings via pytest-benchmark — how fast this
  implementation executes the scenario (simulator throughput);
* **simulated** metrics (latencies in simulated seconds, message and
  suppression counts) attached to ``benchmark.extra_info`` — these are
  the reproduction's analogue of the paper's reported behaviour, and
  the numbers EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro import (
    FaultToleranceDomain,
    FtClientLayer,
    Orb,
    ReplicationStyle,
)
from repro.apps import COUNTER_INTERFACE, CounterServant


def build_domain(world, name="dom", num_hosts=3, gateways=1, mirror=True,
                 totem_config=None):
    domain = FaultToleranceDomain(world, name, num_hosts=num_hosts,
                                  totem_config=totem_config)
    for _ in range(gateways):
        domain.add_gateway(port=2809, mirror_requests=mirror)
    domain.await_stable()
    return domain


def counter_group(domain, style=ReplicationStyle.ACTIVE, replicas=3,
                  name="Counter", **kwargs):
    group = domain.create_group(name, COUNTER_INTERFACE, CounterServant,
                                style=style, num_replicas=replicas, **kwargs)
    domain.await_ready(group)
    return group


def external_stub(world, domain, group, enhanced=True, host_name="browser",
                  first_gateway_only=False):
    host = (world.network.hosts.get(host_name) or world.add_host(host_name))
    orb = Orb(world, host, request_timeout=None)
    ior = domain.ior_for(group, first_gateway_only=first_gateway_only)
    if enhanced:
        layer = FtClientLayer(orb)
        return layer.string_to_object(ior.to_string(), group.interface), layer
    return orb.string_to_object(ior.to_string(), group.interface), None


def metrics_extra_info(world):
    """Registry snapshot for ``benchmark.extra_info``.

    Force-creates the headline series (gateway request latency, Totem
    retransmissions, duplicate suppressions) so every benchmark reports
    them — as zeros when the scenario never exercised that path — and
    keeps the snapshot to the paper-relevant prefixes.
    """
    world.metrics.histogram("gateway.req.latency", unit="s")
    world.metrics.counter("totem.retransmit.count")
    world.metrics.counter("gateway.dup.suppressed")
    snapshot = world.metrics.snapshot()
    prefixes = ("gateway.", "totem.", "fault.", "eternal.")
    return {name: data for name, data in snapshot.items()
            if name.startswith(prefixes)}


def replica_values(domain, group):
    values = {}
    for host_name, rm in domain.rms.items():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            values[host_name] = record.servant.count
    return values
