"""The Eternal Replication Mechanisms (paper Figure 2, sections 2.2, 3.2).

One :class:`ReplicationMechanisms` instance runs on every processor of
a fault tolerance domain, layered on the local Totem member.  It:

* hosts the local replicas of application (and manager) object groups;
* dispatches totally-ordered delivered invocations to those replicas,
  detecting and suppressing duplicate invocations via the
  (source group, client id, operation id) key and caching responses so
  duplicates can be answered without re-execution;
* multicasts replica responses back to the invoking group or gateway;
* drives nested invocations (generator servants) with deterministic
  Figure 6 identifiers;
* implements the replication styles (active, active with voting, warm
  and cold passive, stateless), including primary election, periodic
  checkpoints, per-operation state updates, log replay on failover, and
  state transfer to joining replicas;
* maintains the group registry from idempotent control messages so all
  processors share an identical directory;
* hands gateway-targeted traffic to an attached gateway (the gateway is
  infrastructure, not a CORBA object — paper section 3).

Determinism note: delivered messages are shared in-memory across hosts
by the simulated transport; the only mutation ever performed on one is
stamping ``timestamp`` with the Totem sequence number, which every
receiver sets to the same value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.duplicates import DuplicateSuppressor
from ..core.identifiers import (
    OperationId,
    UNUSED_CLIENT_ID,
    dedup_key,
    external_operation_id,
)
from ..errors import ConfigurationError, TransientError
from ..iiop.giop import RequestMessage, decode_reply, decode_request, encode_request
from ..orb.dispatch import (
    decode_result,
    encode_arguments,
    reply_for_exception,
    reply_for_result,
)
from ..orb.idl import Interface, Operation
from ..orb.servant import NestedCall, Servant
from ..sim.host import Host, Process
from ..sim.trace import Tracer
from ..sim.world import Promise
from ..totem.member import TotemMember
from .execution import Execution, Outcome
from .logging_recovery import GroupLog
from .messages import DomainMessage, MsgKind
from .naming import EXTERNAL_GROUP, GATEWAY_GROUP, make_object_key
from .registry import GroupInfo, GroupRegistry
from .styles import ReplicationStyle

# Bound on the per-group duplicate-detection table.  Entries are evicted
# FIFO; by the time 100k newer operations have been ordered after an
# invocation, any legitimate reissue of it has long been answered.
# (Production Totem GCs at message stability instead; a size bound keeps
# the simulation honest about memory without that machinery.)
DEDUP_TABLE_LIMIT = 100_000


@dataclass
class ReplicaRecord:
    """One local replica of a group."""

    group_id: int
    servant: Servant
    version: int = 1
    ready: bool = True                 # state installed (or nothing to install)
    buffered: List[DomainMessage] = field(default_factory=list)


@dataclass
class _InvocationRecord:
    """Dedup-table entry for one (source, client, op) invocation."""

    status: str                        # "executing" | "done"
    response_iiop: Optional[bytes] = None
    response_expected: bool = True


@dataclass
class _WaitingNested:
    """A local execution suspended on a nested invocation's response."""

    execution: Execution
    original: DomainMessage            # the parent invocation message
    nested_op: Operation               # for result decoding
    group_id: int                      # the invoking (local) group
    call: NestedCall
    op_id: OperationId
    # The multicast-ready nested invocation (None for egress waits).  A
    # leader-follower promotion re-multicasts it: the dead leader may
    # have crashed before issuing it, and targets deduplicate anyway.
    message: Optional[DomainMessage] = None


@dataclass
class _ExternalWaiter:
    """A locally-originated (ambassador) invocation awaiting its response."""

    promise: Promise
    op: Operation


class ReplicationMechanisms(Process):
    """Per-processor replication engine of the Eternal system."""

    def __init__(
        self,
        host: Host,
        totem: TotemMember,
        domain_name: str,
        interfaces: Dict[str, Interface],
        factories: Dict[str, Callable[[], Servant]],
        tracer: Optional[Tracer] = None,
        synced: bool = True,
    ) -> None:
        super().__init__(host, f"rm@{host.name}")
        self.totem = totem
        self.domain_name = domain_name
        self.interfaces = interfaces
        self.factories = factories
        self.tracer = tracer or Tracer(enabled=False)
        # Causal-trace collector (world-shared); hot paths check
        # ``.enabled`` before doing any span work.
        self._span_collector = host.network.spans

        self.registry = GroupRegistry()
        self.replicas: Dict[int, ReplicaRecord] = {}
        self.logs: Dict[int, GroupLog] = {}
        self.live_hosts: Tuple[str, ...] = ()
        self._prev_members: Tuple[str, ...] = ()
        self._last_primary: Dict[int, Optional[str]] = {}

        # Registry synchronization: processors that join a running domain
        # (new gateways, recovered hosts) buffer deliveries until an
        # incumbent sends them the directory snapshot.
        self.synced = synced
        self._presync_buffer: List[DomainMessage] = []

        # Duplicate invocation detection: group -> dedup key -> record.
        self._invocations_seen: Dict[int, Dict[Tuple, _InvocationRecord]] = {}
        # Duplicate response suppression / voting for nested + external calls.
        self._response_filter = DuplicateSuppressor()
        # Suspended executions keyed by (responder group, invoking group, op id).
        self._waiting_nested: Dict[Tuple, _WaitingNested] = {}
        # Ambassador invocations keyed by (responder group, client id, op id).
        self._waiting_external: Dict[Tuple, _ExternalWaiter] = {}
        # Leader-follower followers' withheld responses, group -> parent
        # dedup key -> original invocation.  An entry retires when the
        # leader's response for the same operation is delivered in total
        # order; on promotion the survivor resends the cached replies.
        self._lf_unacked: Dict[int, Dict[Tuple, DomainMessage]] = {}

        self._gateway = None               # attached repro.core.gateway.Gateway
        self._egress = None                # attached cross-domain egress client
        # reprolint: disable=AUD001 -- listener list, fixed at wiring time
        self._membership_listeners: List[Callable[[Tuple[str, ...]], None]] = []
        # reprolint: disable=AUD001 -- listener list, fixed at wiring time
        self._replica_ready_listeners: List[Callable[[int, str, int], None]] = []

        # reprolint: disable=AUD001 -- fixed key set, bounded by construction
        self.stats = {
            "invocations_executed": 0,
            "invocations_duplicate": 0,
            "responses_resent": 0,
            "responses_delivered": 0,
            "responses_suppressed": 0,
            "checkpoints": 0,
            "state_updates": 0,
            "state_transfers_sent": 0,
            "state_transfers_received": 0,
            "replays": 0,
            "responses_withheld": 0,
            "style_switches": 0,
        }

        # World-shared metrics, aggregated across all processors.
        m = self.metrics
        self._m_invocations = m.counter("eternal.invocations.executed")
        self._m_dup_invocations = m.counter("eternal.invocations.duplicate")
        self._m_state_updates = m.counter("eternal.state.updates")
        self._m_checkpoints_sent = m.counter("eternal.checkpoint.multicasts")
        self._m_replays = m.counter("fault.recovery.replays")
        self._m_failovers = m.counter("fault.failover.count")
        self._m_transfer_bytes = m.histogram("fault.state_transfer.bytes", unit="B")
        self._m_recovery_duration = m.histogram("fault.recovery.duration", unit="s")
        # Leader-follower / style-switch counters (`rm.style.*`,
        # `rm.invoke.unservable`) are created lazily through
        # _lazy_counter(): a world that never uses the semi-active
        # engine keeps byte-identical metric snapshots (the same
        # contract the audit gauges honour).
        # reprolint: disable=AUD001 -- metric-object cache, bounded by the fixed name set
        self._lazy_counters: Dict[str, Any] = {}

        # Exhaustive kind -> handler table for :meth:`_dispatch` (hot
        # path, and the SM001 contract: adding a MsgKind without wiring
        # a handler here fails lint instead of falling through).
        # reprolint: disable=AUD001 -- fixed message-kind table, never grows
        self._kind_dispatch = {
            MsgKind.INVOCATION: self._on_invocation,
            MsgKind.RESPONSE: self._on_response,
            MsgKind.GROUP_ANNOUNCE: self._apply_group_announce,
            MsgKind.GROUP_REMOVE: self._apply_group_remove,
            MsgKind.ADD_REPLICA: self._apply_add_replica,
            MsgKind.REMOVE_REPLICA: self._apply_remove_replica,
            MsgKind.REPLICA_READY: self._on_replica_ready_delivered,
            MsgKind.CHECKPOINT: self._apply_checkpoint,
            MsgKind.STATE_UPDATE: self._apply_state_update,
            MsgKind.STATE_TRANSFER: self._apply_state_transfer,
            MsgKind.GATEWAY_MIRROR: self._on_gateway_kind,
            MsgKind.CLIENT_GONE: self._on_gateway_kind,
            MsgKind.ORDER_RECORD: self._apply_order_record,
            MsgKind.STYLE_SWITCH: self._apply_style_switch,
            MsgKind.REGISTRY_SYNC: self._on_registry_sync_delivered,
            MsgKind.REGISTRY_SYNC_REQUEST: self._on_registry_sync_request,
        }

        self._register_audit()

        totem.on_deliver(self._on_deliver)
        totem.on_membership(self._on_membership)
        self.running = True
        if not synced:
            self.soon(self._request_sync)

    def _request_sync(self) -> None:
        """Ask incumbents for the directory snapshot; retry until synced."""
        if self.synced or not self.alive:
            return
        self.multicast(DomainMessage(
            kind=MsgKind.REGISTRY_SYNC_REQUEST, source_group=0, target_group=0,
            data={"requester": self.host.name},
        ))
        self.after(0.05, self._request_sync)

    # ==================================================================
    # Wiring
    # ==================================================================

    def attach_gateway(self, gateway: Any) -> None:
        """Attach the co-located gateway (receives gateway-group traffic)."""
        self._gateway = gateway

    def attach_egress(self, egress: Any) -> None:
        """Attach the cross-domain egress client (section "Fig. 1" path)."""
        self._egress = egress

    def on_membership_change(self, fn: Callable[[Tuple[str, ...]], None]) -> None:
        self._membership_listeners.append(fn)

    def on_replica_ready(self, fn: Callable[[int, str, int], None]) -> None:
        """``fn(group_id, host_name, version)`` on REPLICA_READY delivery."""
        self._replica_ready_listeners.append(fn)

    # ==================================================================
    # Outbound multicast helpers
    # ==================================================================

    def multicast(self, message: DomainMessage) -> None:
        self.totem.multicast(message, size=message.size_hint())

    def _log_for(self, group_id: int) -> GroupLog:
        """The group's invocation log, created metrics-wired on demand."""
        log = self.logs.get(group_id)
        if log is None:
            log = self.logs[group_id] = GroupLog(group_id, metrics=self.metrics)
        return log

    def _lazy_counter(self, name: str):
        """Counter created on first use (see the __init__ note)."""
        counter = self._lazy_counters.get(name)
        if counter is None:
            counter = self._lazy_counters[name] = self.metrics.counter(name)
        return counter

    def _should_respond(self, info: GroupInfo) -> bool:
        """Does this replica multicast the response it computed?

        Styles that respond from every replica always do; otherwise only
        the primary/leader speaks (passive primaries and leader-follower
        leaders — followers execute for hot state but stay silent).
        """
        if info.style.responds_from_all:
            return True
        return info.primary(self.live_hosts) == self.host.name

    def _respond(self, invocation: DomainMessage, reply_iiop: bytes) -> None:
        response = DomainMessage(
            kind=MsgKind.RESPONSE,
            source_group=invocation.target_group,
            target_group=invocation.source_group,
            client_id=invocation.client_id,
            op_id=invocation.op_id,
            iiop=reply_iiop,
            data={"responder": self.host.name},
        )
        tr = invocation.trace
        if tr is not None and self._span_collector.enabled:
            # The response's ordering wait: opened here at multicast,
            # closed by whichever receiver observes the delivery first
            # (the span id rides out-of-band on the message).
            response.trace = tr
            response._trace_order = self._span_collector.start(
                tr[0], "totem.order.response", parent=tr[1],
                source=self.name, responder=self.host.name)
        self.multicast(response)

    # ==================================================================
    # Delivery entry point
    # ==================================================================

    def _on_deliver(self, seq: int, sender: str, payload: Any) -> None:
        if not isinstance(payload, DomainMessage):
            return
        payload.timestamp = seq  # same value stamped by every receiver
        if not self.synced:
            if payload.kind is MsgKind.REGISTRY_SYNC:
                self._apply_registry_sync(payload)
            else:
                self._presync_buffer.append(payload)
            return
        self._dispatch(payload)

    def _dispatch(self, payload: DomainMessage) -> None:
        self._kind_dispatch[payload.kind](payload)
        # Gateways observe their own group's forwarded invocations and all
        # gateway-coordination traffic.
        if self._gateway is not None:
            self._gateway.observe_delivered(payload)

    # ==================================================================
    # Invocations
    # ==================================================================

    def _on_invocation(self, msg: DomainMessage) -> None:
        record = self.replicas.get(msg.target_group)
        if record is None:
            return  # not hosted here
        info = self.registry.get(msg.target_group)
        if info is None:
            return
        if not record.ready:
            record.buffered.append(msg)
            return
        self._process_invocation(msg, record, info)

    def _process_invocation(self, msg: DomainMessage, record: ReplicaRecord,
                            info: GroupInfo) -> None:
        key = dedup_key(msg.source_group, msg.client_id, msg.op_id)
        seen = self._invocations_seen.setdefault(msg.target_group, {})
        existing = seen.get(key)
        tr = msg.trace if self._span_collector.enabled else None
        if existing is not None:
            self.stats["invocations_duplicate"] += 1
            self._m_dup_invocations.inc()
            if tr is not None:
                self._span_collector.instant(
                    tr[0], "rm.duplicate", parent=tr[1], source=self.name,
                    status=existing.status)
            if (existing.status == "done"
                    and existing.response_iiop is not None
                    and self._should_respond(info)):
                # Re-send the cached response: the duplicate may stem from
                # a reinvocation whose original response was lost with a
                # crashed gateway or primary (sections 3.3-3.5).
                # Leader-follower followers hold the same cache but stay
                # silent unless promoted.
                self.stats["responses_resent"] += 1
                self._respond(msg, existing.response_iiop)
            return
        if tr is not None:
            self._span_collector.instant(
                tr[0], "rm.delivery", parent=tr[1], source=self.name,
                seq=msg.timestamp)
        # Record before executing so re-entrant deliveries see it.
        request = decode_request(msg.iiop)
        seen[key] = _InvocationRecord(
            status="executing", response_expected=request.response_expected)
        while len(seen) > DEDUP_TABLE_LIMIT:
            seen.pop(next(iter(seen)))  # FIFO eviction, bounded memory

        style = info.style
        i_execute = (style.executes_everywhere
                     or info.primary(self.live_hosts) == self.host.name)
        if style.is_passive:
            self._log_for(msg.target_group).record_invocation(msg)
        if not i_execute:
            return  # passive backup: logged only
        self._execute(msg, record, info, request, key)

    def _register_audit(self) -> None:
        """Declare this processor's stateful collections to the world
        audit scope (see :mod:`repro.obs.audit`)."""
        scope, owner = self.audit, self.name

        def alive() -> bool:
            return self.alive

        def log_floor() -> int:
            # Each logged group may legitimately hold up to one
            # checkpoint interval of suffix (plus the op that triggered
            # the in-flight checkpoint); anything beyond that was never
            # truncated.
            total = 0
            for group_id in self.logs:
                info = self.registry.get(group_id)
                total += 1 + (info.checkpoint_interval
                              if info is not None else 10)
            return total

        scope.register("rm.logs",
                       lambda: sum(len(log) for log in self.logs.values()),
                       floor=log_floor, owner=owner, active=alive,
                       gauge="rm.state.log_entries")
        scope.register("rm.dedup",
                       lambda: sum(len(t)
                                   for t in self._invocations_seen.values()),
                       floor=lambda: (DEDUP_TABLE_LIMIT
                                      * max(1, len(self._invocations_seen))),
                       owner=owner, active=alive,
                       gauge="rm.state.dedup_entries")
        scope.register("rm.waiting_nested",
                       lambda: len(self._waiting_nested),
                       floor=0, owner=owner, active=alive,
                       gauge="rm.state.waiting_nested")
        scope.register("rm.waiting_external",
                       lambda: len(self._waiting_external),
                       floor=0, owner=owner, active=alive,
                       gauge="rm.state.waiting_external")
        scope.register("rm.presync_buffer",
                       lambda: len(self._presync_buffer),
                       floor=0, owner=owner, active=alive,
                       gauge="rm.state.presync_buffer")
        scope.register("rm.lf_unacked",
                       lambda: sum(len(d) for d in self._lf_unacked.values()),
                       floor=0, owner=owner, active=alive,
                       gauge="rm.state.lf_unacked")
        # Hosted replicas are capacity, not churn: one entry per group
        # this processor hosts, so the registration is snapshot-only.
        scope.register("rm.replicas", lambda: len(self.replicas),
                       floor=None, owner=owner, active=alive,
                       gauge="rm.state.replicas")
        # Primary memory floors at the directory size: one entry per
        # *current* group.  An entry outliving its group's removal is a
        # leak (regression-pinned in tests/test_style_switch.py).
        scope.register("rm.last_primary", lambda: len(self._last_primary),
                       floor=lambda: len(self.registry), owner=owner,
                       active=alive)
        self._response_filter.register_audit(scope, owner=owner, active=alive,
                                             prefix="rm.filter",
                                             gauge_prefix="rm.state.filter")

    def _execute(self, msg: DomainMessage, record: ReplicaRecord,
                 info: GroupInfo, request: RequestMessage, key: Tuple,
                 silent: bool = False, replay: bool = False) -> None:
        interface = self.interfaces.get(info.interface_name)
        if interface is None:
            raise ConfigurationError(
                f"no interface {info.interface_name!r} registered")
        execution = Execution(record.servant, interface, request,
                              parent_ts=msg.timestamp)
        execution.silent = silent
        execution.replay = replay
        if self._span_collector.enabled and msg.trace is not None:
            tr = msg.trace
            execution.trace_span = self._span_collector.start(
                tr[0], "rm.execute", parent=tr[1], source=self.name,
                op=request.operation)
        self.stats["invocations_executed"] += 1
        self._m_invocations.inc()
        outcome = execution.start()
        self._handle_outcome(execution, outcome, msg, info, key)

    def _handle_outcome(self, execution: Execution, outcome: Outcome,
                        original: DomainMessage, info: GroupInfo,
                        key: Tuple) -> None:
        if outcome.kind == Outcome.NESTED:
            self._issue_nested(execution, outcome.nested, original, info, key)
            return
        # Terminal: build the reply.
        if outcome.kind == Outcome.DONE:
            reply = reply_for_result(execution.request.request_id,
                                     execution.op, outcome.value)
        else:
            reply = reply_for_exception(execution.request.request_id,
                                        outcome.error)
        if execution.trace_span:
            self._span_collector.end(execution.trace_span,
                                     outcome=outcome.kind)
            execution.trace_span = 0
        seen = self._invocations_seen.setdefault(original.target_group, {})
        seen[key] = _InvocationRecord(status="done", response_iiop=reply,
                                      response_expected=execution.request.response_expected)
        if execution.request.response_expected and not execution.silent:
            if self._should_respond(info):
                self._respond(original, reply)
            elif info.style.is_semi_active:
                # Leader-follower follower: the reply is computed and
                # cached but withheld — the leader's copy is the one on
                # the wire.  Track it until the leader's response is
                # delivered in total order, so a promoted survivor can
                # resend every reply the dead leader never delivered.
                self._lf_unacked.setdefault(info.group_id, {})[key] = original
                self.stats["responses_withheld"] += 1
                self._lazy_counter("rm.style.responses_withheld").inc()
        self._post_execution(original, info)

    def _post_execution(self, original: DomainMessage, info: GroupInfo) -> None:
        """Style-specific after-effects at the executing primary."""
        record = self.replicas.get(info.group_id)
        if record is None:
            return
        if info.style is ReplicationStyle.WARM_PASSIVE:
            self.stats["state_updates"] += 1
            self._m_state_updates.inc()
            self.multicast(DomainMessage(
                kind=MsgKind.STATE_UPDATE,
                source_group=info.group_id,
                target_group=info.group_id,
                data={"state": record.servant.get_state(),
                      "upto_ts": original.timestamp},
            ))
        elif info.style is ReplicationStyle.COLD_PASSIVE:
            log = self._log_for(info.group_id)
            if log.ops_since_checkpoint >= info.checkpoint_interval:
                self.stats["checkpoints"] += 1
                self._m_checkpoints_sent.inc()
                self.multicast(DomainMessage(
                    kind=MsgKind.CHECKPOINT,
                    source_group=info.group_id,
                    target_group=info.group_id,
                    data={"state": record.servant.get_state(),
                          "upto_ts": original.timestamp,
                          "version": record.version},
                ))
        else:
            # ACTIVE / ACTIVE_WITH_VOTING / LEADER_FOLLOWER / STATELESS:
            # every live replica executed the call itself, so there is
            # no primary state to propagate afterwards.
            return

    # ==================================================================
    # Nested invocations (Figure 6)
    # ==================================================================

    def _issue_nested(self, execution: Execution, call: NestedCall,
                      original: DomainMessage, info: GroupInfo,
                      key: Tuple) -> None:
        op_id = execution.next_child_op_id()
        if call.target.startswith("IOR:"):
            self._issue_egress(execution, call, original, info, key, op_id)
            return
        target_info = self.registry.by_name(call.target)
        if target_info is None:
            outcome = execution.resume_error(ConfigurationError(
                f"unknown nested target {call.target!r}"))
            self._handle_outcome(execution, outcome, original, info, key)
            return
        target_iface = self.interfaces[target_info.interface_name]
        nested_op = target_iface.operation(call.operation)
        votes = self._votes_needed(target_info)
        if votes is None and not nested_op.oneway:
            # Fail fast: a voting target with zero live replicas can
            # never assemble a quorum (see _votes_needed).
            self._lazy_counter("rm.invoke.unservable").inc()
            self.tracer.emit(self.scheduler.now, "eternal.unservable",
                             self.name,
                             f"nested call to voting group {call.target!r} "
                             "with zero live replicas")
            outcome = execution.resume_error(TransientError(
                f"voting group {call.target!r} has no live replicas"))
            self._handle_outcome(execution, outcome, original, info, key)
            return
        request = RequestMessage(
            request_id=_deterministic_request_id(op_id),
            response_expected=not nested_op.oneway,
            object_key=make_object_key(self.domain_name, target_info.group_id),
            operation=nested_op.name,
            body=encode_arguments(nested_op, call.args),
        )
        message = DomainMessage(
            kind=MsgKind.INVOCATION,
            source_group=info.group_id,
            target_group=target_info.group_id,
            client_id=UNUSED_CLIENT_ID,
            op_id=op_id,
            iiop=encode_request(request),
        )
        tr = original.trace
        if tr is not None and self._span_collector.enabled:
            # Nested hop: the child invocation parents under the live
            # rm.execute span, so Figure 6's parent/child structure is
            # visible in the exported tree.  Hop count is unchanged —
            # the call stays inside this domain.
            message.trace = (tr[0], execution.trace_span or tr[1], tr[2])
        wait_key = (target_info.group_id, info.group_id, op_id)
        self._waiting_nested[wait_key] = _WaitingNested(
            execution=execution, original=original, nested_op=nested_op,
            group_id=info.group_id, call=call, op_id=op_id, message=message)
        self._response_filter.expect(wait_key, votes_needed=votes or 1)
        # Leader-follower: only the leader puts the nested invocation on
        # the ring (one copy instead of N); followers derive the same
        # operation id, register the same expectation, and resume on the
        # totally-ordered response like everyone else.  Catch-up replays
        # must still multicast — the cached response they need lives in
        # the target's dedup table and has to be solicited again.
        lf_follower = (info.style.is_semi_active and not execution.replay
                       and info.primary(self.live_hosts) != self.host.name)
        if not lf_follower:
            self.multicast(message)
            if info.style.is_semi_active and not nested_op.oneway:
                # The leader's ordering record: followers verify their
                # locally-derived identifiers against it (Figure 6
                # determinism made checkable at runtime).
                self._lazy_counter("rm.style.order.records").inc()
                self.multicast(DomainMessage(
                    kind=MsgKind.ORDER_RECORD,
                    source_group=info.group_id,
                    target_group=target_info.group_id,
                    op_id=op_id,
                    data={"op": nested_op.name}))
        if nested_op.oneway:
            # No response will come; resume immediately with None.
            self._waiting_nested.pop(wait_key, None)
            self._response_filter.cancel(wait_key)
            outcome = execution.resume(None)
            self._handle_outcome(execution, outcome, original, info, key)

    def _issue_egress(self, execution: Execution, call: NestedCall,
                      original: DomainMessage, info: GroupInfo,
                      key: Tuple, op_id: OperationId) -> None:
        """Nested call whose target is outside this domain (an IOR)."""
        if self._egress is None:
            outcome = execution.resume_error(ConfigurationError(
                "no egress configured for cross-domain invocation"))
            self._handle_outcome(execution, outcome, original, info, key)
            return
        wait_key = (EXTERNAL_GROUP, info.group_id, op_id)
        self._waiting_nested[wait_key] = _WaitingNested(
            execution=execution, original=original,
            nested_op=self._egress.operation_for(call), group_id=info.group_id,
            call=call, op_id=op_id)
        self._response_filter.expect(wait_key, votes_needed=1)
        tr = original.trace
        trace = None
        if tr is not None and self._span_collector.enabled:
            # Leaving the domain through the remote gateway: hop + 1.
            trace = (tr[0], execution.trace_span or tr[1], tr[2] + 1)
        self._egress.issue(info.group_id, op_id, call, trace=trace)

    def _votes_needed(self, info: GroupInfo) -> Optional[int]:
        """Votes a response needs before delivery; None = unservable.

        For voting groups the majority is computed over the *live*
        replicas.  With zero live replicas there is no population to
        take a majority over — the old fallback to ``len(placement)``
        demanded a quorum of dead hosts, a vote that could never
        complete — so the caller must fail fast instead (None).  Before
        the first membership install the full placement stands in for
        the live set (nothing can be delivered yet anyway).
        """
        if not info.style.needs_voting:
            return 1
        live = (len(info.live_replicas(self.live_hosts))
                if self.live_hosts else len(info.placement))
        if live == 0:
            return None
        return live // 2 + 1

    # ==================================================================
    # Responses
    # ==================================================================

    def _on_response(self, msg: DomainMessage) -> None:
        # Leader-follower ack: the leader's response, delivered in total
        # order, retires every follower's withheld copy of the same
        # operation — whatever group the response is addressed to.
        unacked = self._lf_unacked.get(msg.source_group)
        if unacked is not None:
            unacked.pop(
                dedup_key(msg.target_group, msg.client_id, msg.op_id), None)
        if msg.target_group == GATEWAY_GROUP:
            return  # handled by the attached gateway via observe_delivered
        if msg._trace_order:
            # Close the response's ordering-wait span at delivery (first
            # receiver wins; every receiver observes the same instant).
            self._span_collector.end(msg._trace_order, seq=msg.timestamp)
        if msg.target_group == EXTERNAL_GROUP and msg.client_id != UNUSED_CLIENT_ID:
            self._resolve_external(msg)
            return
        wait_key = (msg.source_group, msg.target_group, msg.op_id)
        verdict, payload = self._response_filter.offer(
            wait_key, msg.iiop, responder=msg.data.get("responder"))
        if verdict != DuplicateSuppressor.DELIVER:
            if verdict == DuplicateSuppressor.DUPLICATE:
                self.stats["responses_suppressed"] += 1
            return
        self._deliver_nested(wait_key, payload)

    def _deliver_nested(self, wait_key: Tuple, payload: bytes) -> None:
        """Resume the execution suspended on ``wait_key`` with the
        filter-approved response payload."""
        waiting = self._waiting_nested.pop(wait_key, None)
        if waiting is None:
            return
        self.stats["responses_delivered"] += 1
        if wait_key[0] == EXTERNAL_GROUP and self._egress is not None:
            self._egress.complete(wait_key[1], wait_key[2])
        reply = decode_reply(payload)
        info = self.registry.get(waiting.group_id)
        if info is None:
            return
        try:
            value = decode_result(waiting.nested_op, reply,
                                  little_endian=reply.little_endian)
        except Exception as exc:
            outcome = waiting.execution.resume_error(exc)
        else:
            outcome = waiting.execution.resume(value)
        parent_key = dedup_key(waiting.original.source_group,
                               waiting.original.client_id,
                               waiting.original.op_id)
        self._handle_outcome(waiting.execution, outcome, waiting.original,
                             info, parent_key)

    def _resolve_external(self, msg: DomainMessage) -> None:
        wait_key = (msg.source_group, msg.client_id, msg.op_id)
        if (not self._response_filter.is_expected(wait_key)
                and not self._response_filter.was_delivered(wait_key)):
            return  # another processor's driver invocation
        verdict, payload = self._response_filter.offer(
            wait_key, msg.iiop, responder=msg.data.get("responder"))
        if verdict != DuplicateSuppressor.DELIVER:
            if verdict == DuplicateSuppressor.DUPLICATE:
                self.stats["responses_suppressed"] += 1
            return
        self._deliver_external(wait_key, payload)

    def _deliver_external(self, wait_key: Tuple, payload: bytes) -> None:
        waiter = self._waiting_external.pop(wait_key, None)
        if waiter is None:
            return
        self.stats["responses_delivered"] += 1
        reply = decode_reply(payload)
        try:
            value = decode_result(waiter.op, reply,
                                  little_endian=reply.little_endian)
        except Exception as exc:
            waiter.promise.reject(exc)
        else:
            waiter.promise.resolve(value)

    # ==================================================================
    # Ambassador: locally-originated invocations (testing/driver API)
    # ==================================================================

    def external_invoke(self, target_group_id: int, operation: str,
                        args: Sequence[Any], client_uid: str,
                        request_seq: int) -> Promise:
        """Invoke a replicated group from this processor, outside any
        group context (used by the domain driver API and managers)."""
        promise = Promise()
        info = self.registry.get(target_group_id)
        if info is None:
            promise.reject(ConfigurationError(
                f"unknown group id {target_group_id}"))
            return promise
        interface = self.interfaces[info.interface_name]
        op = interface.operation(operation)
        op_id = external_operation_id(request_seq)
        request = RequestMessage(
            request_id=request_seq,
            response_expected=not op.oneway,
            object_key=make_object_key(self.domain_name, target_group_id),
            operation=op.name,
            body=encode_arguments(op, args),
        )
        message = DomainMessage(
            kind=MsgKind.INVOCATION,
            source_group=EXTERNAL_GROUP,
            target_group=target_group_id,
            client_id=client_uid,
            op_id=op_id,
            iiop=encode_request(request),
        )
        if op.oneway:
            self.multicast(message)
            promise.resolve(None)
            return promise
        votes = self._votes_needed(info)
        if votes is None:
            # Fail fast instead of registering a vote no population of
            # live replicas can ever complete.
            self._lazy_counter("rm.invoke.unservable").inc()
            self.tracer.emit(self.scheduler.now, "eternal.unservable",
                             self.name,
                             f"invocation of voting group {target_group_id} "
                             "with zero live replicas")
            promise.reject(TransientError(
                f"voting group {target_group_id} has no live replicas"))
            return promise
        wait_key = (target_group_id, client_uid, op_id)
        self._waiting_external[wait_key] = _ExternalWaiter(promise=promise, op=op)
        self._response_filter.expect(wait_key, votes_needed=votes)
        self.multicast(message)
        return promise

    # ==================================================================
    # Control messages
    # ==================================================================

    def _on_replica_ready_delivered(self, msg: DomainMessage) -> None:
        for fn in list(self._replica_ready_listeners):
            fn(msg.data["group_id"], msg.data["host"], msg.data["version"])

    def _on_gateway_kind(self, msg: DomainMessage) -> None:
        """GATEWAY_MIRROR / CLIENT_GONE: owned by the attached gateway,
        which observes every delivery through :meth:`_dispatch`."""

    def _on_registry_sync_delivered(self, msg: DomainMessage) -> None:
        """Incumbents already hold the directory (joiners apply the
        snapshot pre-sync, in :meth:`_on_deliver`)."""

    def _on_registry_sync_request(self, msg: DomainMessage) -> None:
        # Every synced member answers; the requester applies the
        # first snapshot and ignores the rest (idempotent).
        if self.synced and msg.data.get("requester") != self.host.name:
            self.multicast(DomainMessage(
                kind=MsgKind.REGISTRY_SYNC, source_group=0,
                target_group=0,
                data={"groups": self.registry.all_groups(),
                      "for": [msg.data.get("requester")]},
            ))

    def _apply_registry_sync(self, msg: DomainMessage) -> None:
        """Adopt the directory snapshot, then replay buffered deliveries.

        The snapshot covers everything ordered before it; the buffered
        messages cover everything ordered between our membership install
        and the snapshot's delivery; live delivery covers the rest —
        together a gap-free view of the directory's history.
        """
        for info in msg.data["groups"]:
            if info.group_id not in self.registry:
                self.registry.announce(info)
                self._last_primary[info.group_id] = info.primary(
                    self.live_hosts or info.placement)
        self.synced = True
        buffered, self._presync_buffer = self._presync_buffer, []
        for queued in buffered:
            self._dispatch(queued)
        self.tracer.emit(self.scheduler.now, "eternal.synced", self.name,
                         f"registry synced ({len(msg.data['groups'])} groups, "
                         f"{len(buffered)} replayed)")

    def _apply_group_announce(self, msg: DomainMessage) -> None:
        info: GroupInfo = msg.data["info"]
        self.registry.announce(info)
        self._last_primary[info.group_id] = info.primary(self.live_hosts or
                                                         info.placement)
        if (info.factory_name
                and self.host.name in info.placement
                and info.group_id not in self.replicas):
            self._create_local_replica(info, ready=True)

    def _apply_group_remove(self, msg: DomainMessage) -> None:
        group_id = msg.data["group_id"]
        self.registry.remove(group_id)
        self.replicas.pop(group_id, None)
        self.logs.pop(group_id, None)
        self._invocations_seen.pop(group_id, None)
        # The primary memory and withheld-response tracking are keyed by
        # group too; without these pops a removed group's entries lived
        # forever (the rm.last_primary leak this line fixes).
        self._last_primary.pop(group_id, None)
        self._lf_unacked.pop(group_id, None)

    def _create_local_replica(self, info: GroupInfo, ready: bool) -> None:
        factory = self.factories.get(info.factory_name)
        if factory is None:
            raise ConfigurationError(f"no factory {info.factory_name!r}")
        servant = _call_factory(factory, self)
        self.replicas[info.group_id] = ReplicaRecord(
            group_id=info.group_id, servant=servant,
            version=info.version, ready=ready)
        if info.style.is_passive:
            self._log_for(info.group_id)

    def _apply_add_replica(self, msg: DomainMessage) -> None:
        group_id = msg.data["group_id"]
        new_host = msg.data["host"]
        info_before = self.registry.get(group_id)
        if info_before is None:
            return
        donor = info_before.primary(self.live_hosts)
        actually_added = self.registry.add_replica(group_id, new_host)
        if not actually_added:
            return
        info = self.registry.require(group_id)
        if new_host == self.host.name and group_id not in self.replicas:
            has_donor = donor is not None and donor != new_host
            self._create_local_replica(info, ready=not has_donor)
            if not has_donor:
                # Nothing to transfer (first/only replica): announce ready.
                self._announce_ready(group_id, info.version)
        if donor == self.host.name and donor != new_host:
            record = self.replicas.get(group_id)
            if record is not None:
                self.stats["state_transfers_sent"] += 1
                transfer = DomainMessage(
                    kind=MsgKind.STATE_TRANSFER,
                    source_group=group_id,
                    target_group=group_id,
                    data={
                        "group_id": group_id,
                        "recipient": new_host,
                        "state": record.servant.get_state(),
                        "version": record.version,
                        "cut_ts": msg.timestamp,
                        "dedup": dict(self._invocations_seen.get(group_id, {})),
                    },
                )
                self._m_transfer_bytes.observe(transfer.size_hint())
                self.multicast(transfer)

    def _apply_remove_replica(self, msg: DomainMessage) -> None:
        group_id = msg.data["group_id"]
        host_name = msg.data["host"]
        self.registry.remove_replica(group_id, host_name)
        if host_name == self.host.name:
            self.replicas.pop(group_id, None)
            self.logs.pop(group_id, None)
            self._lf_unacked.pop(group_id, None)
        self._check_primary_changes()

    def _apply_state_transfer(self, msg: DomainMessage) -> None:
        if msg.data["recipient"] != self.host.name:
            return
        group_id = msg.data["group_id"]
        record = self.replicas.get(group_id)
        if record is None or record.ready:
            return
        self.stats["state_transfers_received"] += 1
        record.servant.set_state(msg.data["state"])
        # record.version stays at the registry version it was created
        # with: during a live upgrade the donor may still run old code,
        # but the transferred *state* is version-compatible by contract.
        self._invocations_seen[group_id] = dict(msg.data["dedup"])
        # The snapshot covers everything ordered before the cut — record
        # it as a checkpoint so a later promotion replays only what this
        # replica logs *after* the transfer, never the ops whose effects
        # the snapshot already contains.  (The donor's log itself is NOT
        # transferred: every entry predates the cut by construction.)
        log = self._log_for(group_id)
        log.install_checkpoint(msg.data["state"], ts=msg.data["cut_ts"],
                               version=record.version)
        record.ready = True
        info = self.registry.get(group_id)
        buffered, record.buffered = record.buffered, []
        if info is not None:
            for queued in buffered:
                self._process_invocation(queued, record, info)
        self._announce_ready(group_id, record.version)

    def _announce_ready(self, group_id: int, version: int) -> None:
        self.multicast(DomainMessage(
            kind=MsgKind.REPLICA_READY,
            source_group=group_id,
            target_group=group_id,
            data={"group_id": group_id, "host": self.host.name,
                  "version": version},
        ))

    def _apply_checkpoint(self, msg: DomainMessage) -> None:
        group_id = msg.data.get("group_id", msg.target_group)
        if msg.target_group not in self.replicas:
            return
        log = self._log_for(msg.target_group)
        log.install_checkpoint(msg.data["state"], msg.data["upto_ts"],
                               msg.data.get("version", 1))

    def _apply_state_update(self, msg: DomainMessage) -> None:
        group_id = msg.target_group
        record = self.replicas.get(group_id)
        info = self.registry.get(group_id)
        if record is None or info is None:
            return
        log = self._log_for(group_id)
        if info.primary(self.live_hosts) == self.host.name:
            # The primary's own update: its servant state is already
            # current, but the covered log prefix must still be dropped
            # or the primary's log grows by one entry per operation.
            log.truncate_covered(msg.data["upto_ts"])
            return
        record.servant.set_state(msg.data["state"])
        log.install_checkpoint(msg.data["state"], msg.data["upto_ts"])

    # ==================================================================
    # Leader-follower ordering and runtime style switching
    # ==================================================================

    def _apply_order_record(self, msg: DomainMessage) -> None:
        """Verify the leader's nested-call ordering against our own.

        Followers derived the same child operation id when they executed
        the parent (total order + deterministic Figure 6 counters); the
        leader's record makes that a *checked* property.  A mismatch
        would mean replica divergence — counted, never silently ignored
        (`rm.style.order.mismatch` is asserted zero by the test suite).
        """
        info = self.registry.get(msg.source_group)
        if info is None or not info.style.is_semi_active:
            return
        record = self.replicas.get(msg.source_group)
        if record is None or not record.ready:
            return  # joining replica: it never executed the parent
        if info.primary(self.live_hosts) == self.host.name:
            return  # the leader checking its own record is vacuous
        wait_key = (msg.target_group, msg.source_group, msg.op_id)
        if (wait_key in self._waiting_nested
                or self._response_filter.was_delivered(wait_key)):
            self._lazy_counter("rm.style.order.followed").inc()
        else:
            self._lazy_counter("rm.style.order.mismatch").inc()

    def _apply_style_switch(self, msg: DomainMessage) -> None:
        """Apply a runtime replication-style change.

        The switch point is the message's position in the total order,
        so every processor partitions the group's history identically:
        operations ordered before it complete under the old engine (a
        dropped voting requirement is relaxed below, so nothing
        strands), operations after it run entirely under the new one.
        Epoch-guarded via the registry, so the redundant copies emitted
        by replicated managers apply exactly once.
        """
        group_id = msg.data["group_id"]
        new_style = ReplicationStyle(msg.data["style"])
        epoch = msg.data["epoch"]
        info = self.registry.get(group_id)
        if info is None:
            return
        old_style = info.style
        if not self.registry.set_style(group_id, new_style, epoch):
            return  # duplicate or stale switch: idempotent control message
        if old_style is new_style:
            return  # epoch advanced, engine unchanged
        self.stats["style_switches"] += 1
        self._lazy_counter("rm.style.switches").inc()
        if self._span_collector.enabled:
            self._span_collector.instant(
                f"style/{group_id}/{epoch}", "rm.style.switch",
                source=self.name, old=old_style.value, new=new_style.value)
        self.tracer.emit(
            self.scheduler.now, "eternal.style_switch", self.name,
            f"group {group_id}: {old_style.value} -> {new_style.value}",
            epoch=epoch)
        info = self.registry.require(group_id)
        record = self.replicas.get(group_id)
        # (1) Executing -> passive: seed the group log from the live
        # servant, so backups log-and-replay from this cut onward.
        if (old_style.executes_everywhere and new_style.is_passive
                and record is not None):
            self._log_for(group_id).adopt_live_state(
                record.servant.get_state(), ts=msg.timestamp,
                version=record.version)
        # (2) Passive -> executing: backups replay their log suffix
        # (silently — those operations' responses were already served by
        # the old primary) to reach the primary's state, then the log is
        # dropped: executing styles keep hot state instead.
        if old_style.is_passive and new_style.executes_everywhere:
            if (record is not None
                    and info.primary(self.live_hosts) != self.host.name):
                self._catch_up_from_log(info, record, old_style)
            self.logs.pop(group_id, None)
        # (3) Voting dropped: in-flight majority expectations can never
        # fill once only the leader speaks — relax them to a single vote
        # at the switch point (consistent everywhere: this is a
        # total-order event) and flush any vote that already suffices.
        if old_style.needs_voting and not new_style.needs_voting:
            ready = self._response_filter.reduce_votes(
                lambda k: k[0] == group_id, 1)
            for relaxed_key, payload in ready:
                self._lazy_counter("rm.style.vote_relaxed").inc()
                if relaxed_key in self._waiting_external:
                    self._deliver_external(relaxed_key, payload)
                else:
                    self._deliver_nested(relaxed_key, payload)

    def _catch_up_from_log(self, info: GroupInfo, record: ReplicaRecord,
                           old_style: ReplicationStyle) -> None:
        """Bring a passive backup to the primary's state for a switch to
        an executing style: restore the latest covering state, then
        silently re-execute the logged suffix.  Replayed nested calls
        are multicast even under leader-follower (``Execution.replay``)
        because the responses they need live in their targets' dedup
        caches and must be solicited; replayed *terminal* responses are
        suppressed (``Execution.silent``) — the old primary already
        served them."""
        log = self.logs.get(info.group_id)
        if log is None:
            return
        if log.checkpoint is not None:
            record.servant.set_state(log.checkpoint.state)
        replay = log.replay_after(log.latest_covered_ts())
        self.tracer.emit(
            self.scheduler.now, "eternal.style_catchup", self.name,
            f"group {info.group_id}: replaying {len(replay)} ops to leave "
            f"{old_style.value}")
        seen = self._invocations_seen.setdefault(info.group_id, {})
        for msg in replay:
            self._lazy_counter("rm.style.catchup_replays").inc()
            request = decode_request(msg.iiop)
            key = dedup_key(msg.source_group, msg.client_id, msg.op_id)
            seen[key] = _InvocationRecord(
                status="executing",
                response_expected=request.response_expected)
            self._execute(msg, record, info, request, key,
                          silent=True, replay=True)

    # ==================================================================
    # Membership changes: failover and recovery
    # ==================================================================

    def _on_membership(self, members: Tuple[str, ...], ring_id) -> None:
        previous = self._prev_members
        self._prev_members = tuple(members)
        self.live_hosts = tuple(members)
        # Registry synchronization for joiners: the lowest-named incumbent
        # (present in both the old and new membership) multicasts the
        # directory snapshot; every incumbent computes the same incumbent.
        if self.synced and previous:
            newcomers = [m for m in members if m not in previous]
            incumbents = [m for m in members if m in previous]
            if newcomers and incumbents and incumbents[0] == self.host.name:
                self.multicast(DomainMessage(
                    kind=MsgKind.REGISTRY_SYNC, source_group=0, target_group=0,
                    data={"groups": self.registry.all_groups(),
                          "for": list(newcomers)},
                ))
        # Recovery duration: crash to the reformation that excludes the
        # crashed processor (service is consistent again from here on).
        # The lowest-named incumbent records, so each departure is
        # measured exactly once however many processors survive.
        if previous:
            departed = [m for m in previous if m not in members]
            incumbents = [m for m in members if m in previous]
            if departed and incumbents and incumbents[0] == self.host.name:
                hosts = self.host.network.hosts
                for name in departed:
                    dead = hosts.get(name)
                    if (dead is not None and not dead.alive
                            and dead.last_crash_at is not None):
                        self._m_recovery_duration.observe(
                            self.scheduler.now - dead.last_crash_at)
        removed = self.registry.prune_dead_hosts(members)
        if removed:
            self.tracer.emit(self.scheduler.now, "eternal.prune",
                             self.name, "replicas pruned",
                             removed=[f"{g}@{h}" for g, h in removed])
        self._check_primary_changes()
        self._fail_unservable_waits()
        for fn in list(self._membership_listeners):
            fn(self.live_hosts)
        if self._egress is not None:
            self._egress.handle_membership(self.live_hosts)

    def _check_primary_changes(self) -> None:
        """Detect primaries/leaders shifting to this host; take over."""
        for info in self.registry.all_groups():
            new_primary = info.primary(self.live_hosts)
            old_primary = self._last_primary.get(info.group_id)
            self._last_primary[info.group_id] = new_primary
            if (new_primary == self.host.name
                    and old_primary != self.host.name
                    and info.group_id in self.replicas):
                if info.style.is_passive:
                    self._recover_as_primary(info)
                elif info.style.is_semi_active:
                    self._promote_leader_follower(info)

    def _recover_as_primary(self, info: GroupInfo) -> None:
        """Cold/warm passive failover: restore state, replay the log."""
        record = self.replicas.get(info.group_id)
        log = self._log_for(info.group_id)
        if record is None:
            return
        self._m_failovers.inc()
        if info.style is ReplicationStyle.COLD_PASSIVE and log.checkpoint:
            record.servant.set_state(log.checkpoint.state)
        covered = log.latest_covered_ts()
        replay = log.replay_after(covered)
        self.tracer.emit(self.scheduler.now, "eternal.failover", self.name,
                         f"promoting to primary of group {info.group_id}",
                         style=info.style.value, replayed=len(replay))
        for msg in replay:
            self.stats["replays"] += 1
            self._m_replays.inc()
            request = decode_request(msg.iiop)
            key = dedup_key(msg.source_group, msg.client_id, msg.op_id)
            # Mark executing (we may have logged it without executing).
            seen = self._invocations_seen.setdefault(info.group_id, {})
            seen[key] = _InvocationRecord(
                status="executing",
                response_expected=request.response_expected)
            self._execute(msg, record, info, request, key)

    def _promote_leader_follower(self, info: GroupInfo) -> None:
        """Leader-follower failover: the new leader's state is already
        hot, so promotion is re-transmission, not recovery.  Resend the
        cached replies the dead leader never got onto the ring (the
        withheld-response ledger), and re-issue still-suspended nested
        invocations — the leader may have crashed before multicasting
        them.  Over-sending is safe (targets and receivers all
        deduplicate); under-sending would lose operations that were
        ordered but never answered."""
        record = self.replicas.get(info.group_id)
        if record is None:
            return
        self._m_failovers.inc()
        self._lazy_counter("rm.style.promotions").inc()
        seen = self._invocations_seen.get(info.group_id, {})
        resent = 0
        for key, original in list(self._lf_unacked.get(info.group_id,
                                                       {}).items()):
            cached = seen.get(key)
            if (cached is not None and cached.status == "done"
                    and cached.response_iiop is not None):
                self.stats["responses_resent"] += 1
                self._respond(original, cached.response_iiop)
                resent += 1
        # The resends retire their own unacked entries when they come
        # back around in total order (_on_response pops them).
        reissued = 0
        for wait_key, waiting in list(self._waiting_nested.items()):
            if waiting.group_id != info.group_id or waiting.message is None:
                continue
            self.multicast(waiting.message)
            if not waiting.nested_op.oneway:
                self._lazy_counter("rm.style.order.records").inc()
                self.multicast(DomainMessage(
                    kind=MsgKind.ORDER_RECORD,
                    source_group=info.group_id,
                    target_group=wait_key[0],
                    op_id=waiting.op_id,
                    data={"op": waiting.nested_op.name}))
            reissued += 1
        self.tracer.emit(self.scheduler.now, "eternal.failover", self.name,
                         f"promoting to leader of group {info.group_id}",
                         style=info.style.value, resent=resent,
                         reissued=reissued)

    def _fail_unservable_waits(self) -> None:
        """Re-evaluate voting expectations after a membership change.

        A vote registered against the pre-crash live set can demand more
        responders than will ever speak again.  Per voting target: zero
        live replicas fails every wait fast (TransientError — the same
        fail-fast _votes_needed applies to new invocations); a
        shrunken-but-alive group has its quorum relaxed to the new
        majority, delivering immediately where already-counted votes
        suffice.  Deterministic across processors: every input (registry,
        live set, filter state) evolves in total order.
        """
        needed: Dict[int, Optional[int]] = {}
        for wait_key in (list(self._waiting_nested)
                         + list(self._waiting_external)):
            target_gid = wait_key[0]
            if target_gid == EXTERNAL_GROUP or target_gid in needed:
                continue
            t_info = self.registry.get(target_gid)
            if t_info is None or not t_info.style.needs_voting:
                continue
            needed[target_gid] = self._votes_needed(t_info)
        for target_gid, votes in needed.items():
            if votes is None:
                err = TransientError(
                    f"voting group {target_gid} lost all replicas")
                for wait_key in [k for k in self._waiting_external
                                 if k[0] == target_gid]:
                    self._lazy_counter("rm.invoke.unservable").inc()
                    self._response_filter.cancel(wait_key)
                    self._waiting_external.pop(wait_key).promise.reject(err)
                for wait_key in [k for k in self._waiting_nested
                                 if k[0] == target_gid]:
                    self._lazy_counter("rm.invoke.unservable").inc()
                    self._response_filter.cancel(wait_key)
                    waiting = self._waiting_nested.pop(wait_key)
                    parent_info = self.registry.get(waiting.group_id)
                    if parent_info is None:
                        continue
                    outcome = waiting.execution.resume_error(err)
                    parent_key = dedup_key(waiting.original.source_group,
                                           waiting.original.client_id,
                                           waiting.original.op_id)
                    self._handle_outcome(waiting.execution, outcome,
                                         waiting.original, parent_info,
                                         parent_key)
            else:
                ready = self._response_filter.reduce_votes(
                    lambda k, g=target_gid: k[0] == g, votes)
                for relaxed_key, payload in ready:
                    self._lazy_counter("rm.style.vote_relaxed").inc()
                    if relaxed_key in self._waiting_external:
                        self._deliver_external(relaxed_key, payload)
                    else:
                        self._deliver_nested(relaxed_key, payload)


def _call_factory(factory: Callable[..., Servant],
                  rm: "ReplicationMechanisms") -> Servant:
    """Invoke a servant factory, passing the local Replication Mechanisms
    when the factory declares a parameter for it (manager servants need
    access to the local registry; plain application factories do not)."""
    import inspect
    try:
        params = inspect.signature(factory).parameters.values()
        takes_rm = any(
            p.default is inspect.Parameter.empty
            and p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                           inspect.Parameter.POSITIONAL_OR_KEYWORD)
            for p in params)
    except (TypeError, ValueError):
        takes_rm = False
    return factory(rm) if takes_rm else factory()


def _deterministic_request_id(op_id: OperationId) -> int:
    """Request id derived from the operation id so every replica of the
    invoking group marshals byte-identical nested requests."""
    return ((op_id.parent_ts & 0xFFFFFF) << 8) | (op_id.child_seq & 0xFF)
