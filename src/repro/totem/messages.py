"""Wire messages of the Totem-style single-ring protocol.

Four message kinds circulate among ring members:

* :class:`RegularMessage` — an application payload stamped with a ring
  identity and a totally-ordered sequence number.  These sequence
  numbers are the "message timestamps" of the paper's Figure 6: Eternal
  derives invocation/response identifier timestamps from them.
* :class:`Token` — the circulating token: sequencing authority,
  all-received-up-to (aru) stability tracking, and retransmission
  requests.
* :class:`JoinMessage` — membership gathering after token loss or a
  joining processor.
* :class:`CommitMessage` — installs a new ring (membership change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Set, Tuple

# A ring is identified by (generation counter, leader name): the leader
# component keeps concurrently formed rings (during a partition) distinct.
RingId = Tuple[int, str]

INITIAL_RING: RingId = (0, "")


@dataclass
class RegularMessage:
    """A totally-ordered multicast payload."""

    ring_id: RingId
    seq: int
    sender: str
    payload: Any
    size_hint: int = 64


@dataclass
class Token:
    """The rotating token of the single-ring protocol.

    ``seq`` is the highest sequence number assigned on this ring.
    ``aru`` trails ``seq``: it is the minimum received-up-to observed
    over the previous full rotation, so every message with
    ``seq <= aru`` is stable (received everywhere) and can be garbage
    collected from retransmission stores.
    """

    ring_id: RingId
    seq: int
    aru: int
    aru_candidate: int
    rotation: int = 0
    rtr: Set[int] = field(default_factory=set)


@dataclass
class JoinMessage:
    """Broadcast while gathering a new membership."""

    sender: str
    ring_id: RingId
    candidates: FrozenSet[str]
    max_seq: int


@dataclass
class CommitMessage:
    """Installs a new ring: membership, identity, starting sequence."""

    ring_id: RingId
    members: Tuple[str, ...]
    start_seq: int
    leader: str
