"""Deterministic servant execution with nested invocations.

A servant method either returns a value directly, or — when it must
invoke another replicated object — is written as a generator that
yields :class:`~repro.orb.servant.NestedCall` descriptors (Figure 6's
"parent invocation" performing "child operations").  The Replication
Mechanisms drive these generators: each yield suspends the execution
until the matching response is delivered in total order, at which point
every replica resumes at the same logical instant with the same value.

Child invocations are numbered within the parent operation
(``S_child`` of Figure 6) by a per-execution counter, so all replicas
of the invoking group derive identical operation identifiers for every
nested call.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional

from ..core.identifiers import OperationId
from ..errors import BadOperation
from ..iiop.giop import RequestMessage
from ..orb.dispatch import decode_arguments
from ..orb.idl import Interface, Operation
from ..orb.servant import NestedCall, Servant


class Outcome:
    """Result of advancing an execution one step."""

    DONE = "done"
    NESTED = "nested"
    ERROR = "error"

    def __init__(self, kind: str, value: Any = None,
                 nested: Optional[NestedCall] = None,
                 error: Optional[Exception] = None) -> None:
        self.kind = kind
        self.value = value
        self.nested = nested
        self.error = error

    @staticmethod
    def done(value: Any) -> "Outcome":
        return Outcome(Outcome.DONE, value=value)

    @staticmethod
    def nested_call(call: NestedCall) -> "Outcome":
        return Outcome(Outcome.NESTED, nested=call)

    @staticmethod
    def failed(error: Exception) -> "Outcome":
        return Outcome(Outcome.ERROR, error=error)


class Execution:
    """One in-progress invocation on one local replica.

    The lifecycle is: :meth:`start`, then zero or more
    (:meth:`current_child_op_id`, wait for response,
    :meth:`resume`/:meth:`resume_error`) rounds, each producing an
    :class:`Outcome`.
    """

    def __init__(self, servant: Servant, interface: Interface,
                 request: RequestMessage, parent_ts: int) -> None:
        self.servant = servant
        self.interface = interface
        self.request = request
        self.parent_ts = parent_ts          # T_parent_inv of Figure 6
        self.op: Optional[Operation] = None  # resolved in start()
        self._generator = None
        self._child_counter = 0
        self.finished = False
        # Open ``rm.execute`` span id while this execution is in flight
        # (0 when tracing is disabled or the invocation was untraced).
        self.trace_span = 0
        # silent: the terminal response must not be multicast (style
        # catch-up replay on a replica that never responds for this op).
        # replay: nested calls must be multicast even where a
        # leader-follower follower would normally stay quiet — the
        # cached responses exist only in peers' dedup tables and must be
        # solicited again.
        self.silent = False
        self.replay = False

    # ------------------------------------------------------------------

    def start(self) -> Outcome:
        """Decode arguments and run the servant method to its first
        suspension point (or completion).

        Resolution, unmarshalling and application errors all surface as
        ERROR outcomes (never exceptions), so a malformed request from
        outside the domain can only produce an exception *reply*."""
        try:
            self.op = self.interface.operation(self.request.operation)
            args = decode_arguments(self.op, self.request,
                                    little_endian=self.request.little_endian)
            method = getattr(self.servant, self.op.name, None)
            if method is None:
                raise BadOperation(
                    f"servant {type(self.servant).__name__} lacks "
                    f"method {self.op.name!r}")
            result = method(*args)
        except Exception as exc:
            self.finished = True
            return Outcome.failed(exc)
        if inspect.isgenerator(result):
            self._generator = result
            return self._advance(lambda: next(self._generator))
        self.finished = True
        return Outcome.done(result)

    def resume(self, value: Any) -> Outcome:
        """Feed a nested-call result back into the servant."""
        return self._advance(lambda: self._generator.send(value))

    def resume_error(self, error: Exception) -> Outcome:
        """Raise a nested-call failure inside the servant."""
        return self._advance(lambda: self._generator.throw(error))

    def _advance(self, step) -> Outcome:
        try:
            yielded = step()
        except StopIteration as stop:
            self.finished = True
            return Outcome.done(stop.value)
        except Exception as exc:
            self.finished = True
            return Outcome.failed(exc)
        if not isinstance(yielded, NestedCall):
            self.finished = True
            return Outcome.failed(BadOperation(
                f"servant yielded {type(yielded).__name__}; "
                "only NestedCall may be yielded"))
        return Outcome.nested_call(yielded)

    # ------------------------------------------------------------------

    def next_child_op_id(self) -> OperationId:
        """Allocate the next child operation id (T_parent_inv, S_child).

        Deterministic: every replica counts the parent's children in
        the same order because resumptions follow the total order.
        """
        self._child_counter += 1
        return OperationId(self.parent_ts, self._child_counter)
