"""Twin-kernel differential harness: calendar queue vs reference heap.

The production :class:`repro.sim.scheduler.Scheduler` (calendar-queue
kernel, this PR) and the pre-overhaul binary-heap kernel preserved as
:class:`repro.sim.reference_scheduler.ReferenceScheduler` promise the
*same* semantics: events fire in ``(time, tiebreak)`` order with the
tie-break drawn at schedule/reschedule/rearm time.  This module pins
that promise three ways:

* every golden scenario in :mod:`repro.analysis.scenarios` is replayed
  on both kernels and the canonical artifacts (delivery traces, metric
  snapshots) must be **byte-identical**;
* Hypothesis generates random programs over the full scheduling API —
  ``call_at`` / ``call_after`` / ``call_soon`` / ``post`` /
  ``post_batch`` / ``call_every`` / ``cancel`` / ``reschedule`` /
  ``reschedule_after`` / ``rearm_after`` — executed from *inside*
  running events, and both
  kernels must produce identical firing logs, final clocks and event
  counts;
* segmented ``run(until=...)`` / ``step()`` drives (which exercise the
  calendar kernel's partially drained cohort stash) must match the
  reference at every cut point.

Any future kernel change that alters observable ordering fails here
first, long before a golden file drifts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scenarios import (GOLDEN_SCENARIOS,
                                      run_failover_scenario)
from repro.analysis.race import drop_metric_series
from repro.sim.reference_scheduler import ReferenceScheduler
from repro.sim.scheduler import Scheduler

KERNELS = (Scheduler, ReferenceScheduler)

# ----------------------------------------------------------------------
# Golden scenarios: byte-identical artifacts on both kernels
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_golden_artifacts_byte_identical_across_kernels(name):
    """Each golden scenario's canonical artifacts — the same strings the
    golden-file gate and the race sweep compare — must not depend on
    which kernel ran the simulation."""
    builder = GOLDEN_SCENARIOS[name]
    new_artifacts = dict(builder(None))
    ref_artifacts = dict(builder(ReferenceScheduler()))
    assert sorted(new_artifacts) == sorted(ref_artifacts)
    for key in sorted(new_artifacts):
        assert new_artifacts[key] == ref_artifacts[key], (
            f"{name}:{key} differs between kernels")


def test_failover_world_state_identical_across_kernels():
    """Beyond the exported artifacts: the raw end-of-run world state —
    clock, event count, full metric snapshot minus the volatile
    compaction counter — matches between kernels."""
    new_world = run_failover_scenario()
    ref_world = run_failover_scenario(scheduler=ReferenceScheduler())
    assert new_world.now == ref_world.now
    assert (new_world.scheduler.events_processed
            == ref_world.scheduler.events_processed)
    assert (drop_metric_series(new_world.metrics_json())
            == drop_metric_series(ref_world.metrics_json()))


# ----------------------------------------------------------------------
# Random programs over the scheduling API
# ----------------------------------------------------------------------

# Times/delays on a 2.5ms grid spanning 0–150ms: fine enough to create
# same-time cohorts, coarse enough to repeatedly cross the calendar
# kernel's 8ms slot boundaries (the interesting alignments).
_TIMES = st.integers(0, 60).map(lambda k: k * 0.0025)
_DELAYS = st.integers(0, 40).map(lambda k: k * 0.0025)
_IDX = st.integers(0, 99)

_OPS = st.one_of(
    st.tuples(st.just("timer"), _TIMES, _DELAYS, st.just(0)),
    st.tuples(st.just("at"), _TIMES, _DELAYS, st.just(0)),
    st.tuples(st.just("soon"), _TIMES, st.just(0), st.just(0)),
    st.tuples(st.just("post"), _TIMES, _DELAYS, st.just(0)),
    st.tuples(st.just("post_batch"), _TIMES, _DELAYS,
              st.integers(0, 5)),
    st.tuples(st.just("every"), _TIMES,
              st.integers(1, 8).map(lambda k: k * 0.003),
              st.integers(1, 5).map(lambda k: k * 0.01)),
    st.tuples(st.just("cancel"), _TIMES, _IDX, st.just(0)),
    st.tuples(st.just("resched"), _TIMES, _IDX, _DELAYS),
    st.tuples(st.just("resched_after"), _TIMES, _IDX, _DELAYS),
    st.tuples(st.just("rearm"), _TIMES, _IDX, _DELAYS),
)

_PROGRAMS = st.lists(_OPS, min_size=1, max_size=30)


def _run_program(kernel, program):
    """Execute ``program`` on a fresh kernel; each op runs as an event
    at its own simulated time, so cancels/reschedules/rearms interleave
    with firings exactly as application code would issue them."""
    sched = kernel()
    log = []
    handles = []

    def note(tag):
        log.append((sched.now, "fire", tag))

    def run_op(i, op):
        kind, _, p1, p2 = op
        if kind == "timer":
            handles.append(sched.call_after(p1, note, i))
        elif kind == "at":
            handles.append(sched.call_at(sched.now + p1, note, i))
        elif kind == "soon":
            handles.append(sched.call_soon(note, i))
        elif kind == "post":
            sched.post(p1, note, i)
        elif kind == "post_batch":
            sched.post_batch(p1, note, [(f"{i}.{j}",) for j in range(p2)])
        elif kind == "every":
            timer = sched.call_every(p1, note, i)
            handles.append(timer)
            # Bound the series: cancel it a fixed delay later.
            sched.call_after(p2, timer.cancel)
        elif kind == "cancel":
            if handles:
                target = p1 % len(handles)
                handles[target].cancel()
                log.append((sched.now, "cancel", target))
        elif kind == "resched":
            if handles:
                target = handles[p1 % len(handles)]
                if target.active:
                    sched.reschedule(target, sched.now + p2)
                    log.append((sched.now, "resched", p1 % len(handles)))
        elif kind == "resched_after":
            if handles:
                target = handles[p1 % len(handles)]
                if target.active:
                    sched.reschedule_after(target, p2)
                    log.append((sched.now, "resched_after",
                                p1 % len(handles)))
        elif kind == "rearm":
            if handles:
                target = handles[p1 % len(handles)]
                if target.fired and not target.cancelled:
                    sched.rearm_after(target, p2)
                    log.append((sched.now, "rearm", p1 % len(handles)))
    for i, op in enumerate(program):
        sched.call_at(op[1], run_op, i, op)
    returned = sched.run(max_events=100_000)
    return log, sched.now, sched.events_processed, returned


@settings(max_examples=200, deadline=None)
@given(program=_PROGRAMS)
def test_random_programs_fire_identically(program):
    """The headline differential: 200 random API programs, identical
    firing order (the log captures every fire/cancel/reschedule/rearm
    with its simulated time), final clock, and event count."""
    new_result = _run_program(Scheduler, program)
    ref_result = _run_program(ReferenceScheduler, program)
    assert new_result == ref_result


@settings(max_examples=50, deadline=None)
@given(
    timers=st.lists(st.tuples(_TIMES, st.booleans()), min_size=1,
                    max_size=25),
    cuts=st.lists(st.integers(1, 70), min_size=1, max_size=5),
    steps=st.integers(0, 3),
)
def test_segmented_until_and_step_drives_match(timers, cuts, steps):
    """run(until=...) leaves partially drained state behind (the
    calendar kernel stashes a half-consumed cohort; the heap kernel
    leaves entries queued).  Driving both kernels through the same cut
    points — with step() calls and mid-segment cancels thrown in — must
    keep them in lockstep at every boundary."""
    bounds = sorted(k * 0.0025 for k in cuts)
    results = []
    for kernel in KERNELS:
        sched = kernel()
        log = []
        handles = [sched.call_after(t, log.append, (t, i))
                   for i, (t, flag) in enumerate(timers)]
        # Pre-run hygiene: cancel the flagged half before anything runs.
        for handle, (_, flag) in zip(handles, timers):
            if flag:
                handle.cancel()
        observations = []
        for _ in range(steps):
            observations.append(("step", sched.step(), sched.now,
                                 tuple(log)))
        for bound in bounds:
            processed = sched.run(until=bound)
            observations.append(("run", bound, processed, sched.now,
                                 tuple(log)))
            # Mid-drive mutation: push the first still-active timer out
            # past the next bound, exercising lazy reschedule across
            # segment boundaries.
            for handle in handles:
                if handle.active:
                    sched.reschedule(handle, sched.now + 0.02)
                    break
        final = sched.run()
        observations.append(("final", final, sched.now, tuple(log),
                             sched.events_processed))
        results.append(observations)
    assert results[0] == results[1]


@settings(max_examples=30, deadline=None)
@given(program=_PROGRAMS)
def test_narrow_slots_change_nothing(program):
    """Slot width is a pure performance knob: a calendar kernel with
    pathologically narrow slots (every event its own bucket, maximal
    slot-heap traffic) still matches the reference exactly."""
    narrow = _run_program(lambda: Scheduler(slot_width=0.0001), program)
    ref = _run_program(ReferenceScheduler, program)
    assert narrow == ref
