"""The miniature ORB: object adapter, stubs, and request plumbing.

One :class:`Orb` instance lives in each client or server process.  On
the server side it owns an :class:`ObjectAdapter` (servant registry
keyed by object key) and an IIOP listener; on the client side it hands
out :class:`Stub` objects whose invocations travel as real GIOP bytes
over simulated TCP.

The *requester* seam is where the paper's client-side story plugs in: a
stub delegates transmission to a requester object.  The default
:class:`PlainRequester` behaves like a year-2000 commercial ORB — it
uses only the first IOR profile and fails outstanding requests on
connection loss (section 3.4).  The enhanced interception layer of
section 3.5 (:class:`repro.core.client_interceptor.FtClientLayer`)
substitutes its own requester with profile traversal and reinvocation.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import CommFailure, ConfigurationError, NoResponse, ObjectNotExist
from ..iiop.giop import (
    RequestMessage,
    ServiceContext,
    encode_request,
)
from ..iiop.ior import Ior
from ..sim.host import Host, Process
from ..sim.tcp import TcpEndpoint, TcpStack
from ..sim.world import Promise, World
from .connection import IiopClientConnection, IiopServerConnection
from .dispatch import (
    decode_result,
    encode_arguments,
    reply_for_exception,
    reply_for_result,
    run_to_completion,
)
from .idl import Interface, Operation
from .servant import Servant


class ObjectAdapter:
    """Servant registry: object key -> servant (a minimal POA)."""

    def __init__(self) -> None:
        self._servants: Dict[bytes, Servant] = {}
        self._counter = itertools.count(1)

    def activate(self, servant: Servant, key: Optional[bytes] = None) -> bytes:
        if key is None:
            key = f"obj/{servant.interface.name}/{next(self._counter)}".encode()
        if key in self._servants:
            raise ConfigurationError(f"object key {key!r} already active")
        self._servants[key] = servant
        return key

    def deactivate(self, key: bytes) -> None:
        self._servants.pop(key, None)

    def lookup(self, key: bytes) -> Servant:
        servant = self._servants.get(key)
        if servant is None:
            raise ObjectNotExist(f"no servant for object key {key!r}")
        return servant

    def __len__(self) -> int:
        return len(self._servants)


class Requester:
    """Strategy interface for transmitting a stub's requests."""

    def service_contexts(self,
                         request_id: Optional[int] = None) -> List[ServiceContext]:
        """Contexts to stamp into an outgoing request.  ``request_id``
        is the id the request will carry (the enhanced layer derives
        its per-invocation trace context from it); it may be omitted by
        callers that only need identity contexts."""
        return []

    def send(self, stub: "Stub", op: Operation, request: RequestMessage,
             encoded: bytes, promise: Promise) -> None:
        raise NotImplementedError


class PlainRequester(Requester):
    """Year-2000 ORB semantics: first profile only, no failover."""

    def __init__(self, orb: "Orb") -> None:
        self.orb = orb

    def send(self, stub: "Stub", op: Operation, request: RequestMessage,
             encoded: bytes, promise: Promise) -> None:
        address = stub.ior.primary_profile().address
        connection = self.orb.connection_to(address)
        if op.oneway:
            try:
                connection.send_oneway(encoded)
            except CommFailure as exc:
                promise.reject(exc)
                return
            promise.resolve(None)
            return

        def on_reply(reply) -> None:
            try:
                promise.resolve(decode_result(op, reply,
                                              little_endian=reply.little_endian))
            except Exception as exc:  # user/system exception from the body
                promise.reject(exc)

        connection.send_request(encoded, request.request_id, on_reply,
                                promise.reject)


class Stub:
    """Client-side proxy for a remote object."""

    def __init__(self, orb: "Orb", ior: Ior, interface: Interface,
                 requester: Optional[Requester] = None) -> None:
        self.orb = orb
        self.ior = ior
        self.interface = interface
        self.requester = requester or orb.default_requester

    def invoke(self, operation: str, args: Sequence[Any] = (),
               timeout: Optional[float] = None) -> Promise:
        """Invoke ``operation`` with ``args``; returns a Promise."""
        op = self.interface.operation(operation)
        promise = Promise()
        request_id = self.orb.next_request_id()
        request = RequestMessage(
            request_id=request_id,
            response_expected=not op.oneway,
            object_key=self.ior.primary_profile().object_key,
            operation=op.name,
            service_contexts=self.requester.service_contexts(request_id),
            body=encode_arguments(op, args),
        )
        encoded = encode_request(request)
        self.requester.send(self, op, request, encoded, promise)
        deadline = timeout if timeout is not None else self.orb.request_timeout
        if deadline is not None and not op.oneway:
            def expire() -> None:
                promise.reject(NoResponse(
                    f"{operation} did not complete within {deadline}s"))
            timer = self.orb.host.scheduler.call_after(deadline, expire)
            promise.on_done(lambda _: timer.cancel())
        return promise

    def call(self, operation: str, *args: Any,
             timeout: Optional[float] = None) -> Promise:
        """Ergonomic positional-args variant of :meth:`invoke`."""
        return self.invoke(operation, list(args), timeout=timeout)


class Orb(Process):
    """One ORB instance: client machinery plus an optional server side."""

    def __init__(self, world: World, host: Host, name: Optional[str] = None,
                 request_timeout: Optional[float] = 30.0) -> None:
        super().__init__(host, name or f"orb@{host.name}")
        self.world = world
        self.tcp: TcpStack = world.tcp
        self.adapter = ObjectAdapter()
        self.request_timeout = request_timeout
        self.default_requester: Requester = PlainRequester(self)
        self._request_ids = itertools.count(1)
        self._connections: Dict[Tuple[str, int], IiopClientConnection] = {}
        self._server_connections: List[IiopServerConnection] = []
        self._listener = None
        self._listen_port: Optional[int] = None
        self.running = True  # ORBs are live upon construction

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def next_request_id(self) -> int:
        return next(self._request_ids)

    def connection_to(self, address: Tuple[str, int]) -> IiopClientConnection:
        """Return a usable connection to ``address``, creating one if the
        cached connection is absent or has failed."""
        connection = self._connections.get(address)
        if connection is None or not connection.usable:
            connection = IiopClientConnection(self.tcp, self.host, address)
            self._connections[address] = connection
        return connection

    def string_to_object(self, ior: Any, interface: Interface,
                         requester: Optional[Requester] = None) -> Stub:
        """Create a stub from an ``IOR:`` string or an :class:`Ior`."""
        if isinstance(ior, str):
            ior = Ior.from_string(ior)
        return Stub(self, ior, interface, requester=requester)

    # ------------------------------------------------------------------
    # Server side (plain, unreplicated CORBA server)
    # ------------------------------------------------------------------

    def listen(self, port: int) -> None:
        if self._listener is not None:
            raise ConfigurationError(f"{self.name} is already listening")
        self._listener = self.tcp.listen(self.host, port, self._on_accept)
        self._listen_port = port

    def activate_object(self, servant: Servant,
                        key: Optional[bytes] = None) -> Ior:
        """Register a servant and return its published single-profile IOR.

        The address placed in the IOR is obtained from
        :meth:`published_address` — the seam Eternal's Interceptor
        overrides to substitute the gateway's address (section 3.1).
        """
        if self._listen_port is None:
            raise ConfigurationError(
                f"{self.name}: listen() before activate_object()")
        object_key = self.adapter.activate(servant, key)
        host, port = self.published_address()
        return Ior.for_endpoints(servant.interface.repo_id,
                                 [(host, port)], object_key)

    def published_address(self) -> Tuple[str, int]:
        """The {host, port} this ORB writes into IORs.

        Equivalent to the ORB querying ``getsockname()``/``sysinfo()``;
        Eternal's Interceptor overrides this method's result to point at
        the gateway.
        """
        assert self._listen_port is not None
        return (self.host.name, self._listen_port)

    def _on_accept(self, endpoint: TcpEndpoint) -> None:
        connection = IiopServerConnection(
            endpoint, self._handle_message,
            on_close=self._server_connections_remove)
        self._server_connections.append(connection)

    def _server_connections_remove(self, connection: IiopServerConnection) -> None:
        if connection in self._server_connections:
            self._server_connections.remove(connection)

    def _handle_message(self, message: bytes,
                        connection: IiopServerConnection) -> None:
        from ..iiop.giop import MsgType, decode_request, parse_header
        message_type, _, _ = parse_header(message)
        if message_type != MsgType.REQUEST:
            return
        request = decode_request(message)
        try:
            servant = self.adapter.lookup(request.object_key)
            op, value = run_to_completion(servant, request,
                                          little_endian=request.little_endian)
        except Exception as exc:
            if request.response_expected:
                connection.send(reply_for_exception(request.request_id, exc))
            return
        if request.response_expected:
            connection.send(reply_for_result(request.request_id, op, value))
