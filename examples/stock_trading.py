#!/usr/bin/env python
"""The paper's motivating scenario: Internet stock trading (section 1).

Customers with unreplicated Web browsers invoke a replicated trading
desk through the gateway of the trading company's fault tolerance
domain.  Each buy/sell triggers nested invocations (Figure 6): the desk
queries the replicated quote service and records the order with the
replicated settlement group, all inside the domain.

The example runs three customers concurrently, prints the resulting
positions, and shows that every group's replicas agree bit-for-bit even
though three desk replicas each issued every nested call.

Run:  python examples/stock_trading.py
"""

from repro import FaultToleranceDomain, FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    QUOTE_INTERFACE,
    QuoteServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
    TRADING_INTERFACE,
    TradingDeskServant,
)

PRICES = {"ACME": 1500, "INITECH": 300, "HOOLI": 72000}


def build_exchange(world):
    domain = FaultToleranceDomain(world, "exchange", num_hosts=4)
    domain.add_gateway(port=2809)
    domain.create_group("Quotes", QUOTE_INTERFACE,
                        lambda: QuoteServant(PRICES),
                        style=ReplicationStyle.ACTIVE, num_replicas=3)
    domain.create_group("Settlement", SETTLEMENT_INTERFACE, SettlementServant,
                        style=ReplicationStyle.ACTIVE, num_replicas=3)
    desk = domain.create_group(
        "Desk", TRADING_INTERFACE,
        lambda: TradingDeskServant(quote_group="Quotes",
                                   settlement_target="Settlement"),
        style=ReplicationStyle.ACTIVE, num_replicas=3)
    domain.await_stable()
    return domain, desk


def browser(world, domain, desk, name):
    host = world.add_host(f"browser-{name}")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid=f"customer/{name}")
    return layer.string_to_object(domain.ior_for(desk).to_string(),
                                  TRADING_INTERFACE)


def main():
    world = World(seed=7)
    domain, desk = build_exchange(world)
    print(f"exchange domain up: hosts={[h.name for h in domain.hosts]}")

    alice = browser(world, domain, desk, "alice")
    bob = browser(world, domain, desk, "bob")
    carol = browser(world, domain, desk, "carol")

    # Three customers trade concurrently through the same gateway; a
    # second wave holds each customer's follow-up (dependent) order.
    waves = [
        [
            (alice, "buy", ("alice", "ACME", 100)),
            (bob, "buy", ("bob", "INITECH", 500)),
            (carol, "buy", ("carol", "HOOLI", 2)),
        ],
        [
            (alice, "sell", ("alice", "ACME", 40)),
            (bob, "buy", ("bob", "ACME", 10)),
        ],
    ]
    order_count = 0
    for wave in waves:
        promises = [stub.call(op, *args) for stub, op, args in wave]
        world.run_until_done(promises, timeout=600)
        for (stub, op, args), promise in zip(wave, promises):
            print(f"  {op}{args} -> position {promise.result()}")
        order_count += len(wave)

    print("\npositions per desk replica (identical everywhere):")
    world.run(until=world.now + 0.5)
    for host_name, rm in sorted(domain.rms.items()):
        record = rm.replicas.get(desk.group_id)
        if record is not None:
            print(f"  {host_name}: {dict(sorted(record.servant.positions.items()))}")

    settlement = domain.resolve("Settlement")
    count = world.await_promise(settlement.invoke("settled_count"))
    print(f"\nsettlement group recorded {count} orders "
          f"(= {order_count} placed: nested calls executed exactly once)")

    gateway = domain.gateways[0]
    print("\ngateway:", {k: v for k, v in gateway.stats.items() if v})


if __name__ == "__main__":
    main()
