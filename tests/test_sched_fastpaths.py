"""Ordering-equivalence tests for the scheduler's hot-path refinements.

``reschedule`` / ``rearm_after`` and queue compaction exist purely to
cut allocation and heap churn; they must never change *when* a callback
fires relative to every other same-time event.  The twin-scheduler
tests here drive one scheduler through the fast paths and a second
through the cancel-and-recreate idiom the fast paths replace, with
identical interleaved traffic, and require identical firing orders.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler


def _twin_run(script, use_fastpath):
    """Run ``script`` on a fresh scheduler; return the firing log.

    Script ops:
      ("spawn", label, time)            – schedule a labelled event
      ("periodic", label, period, n)    – self-rescheduling chain, n hops
      ("move", idx, time)               – move the idx-th periodic timer
    """
    sched = Scheduler()
    log = []
    moveable = {}

    def fire(label):
        log.append((sched.now, label))

    def chain(label, period, remaining):
        log.append((sched.now, label))
        if remaining > 0:
            timer = sched.call_after(period, chain, label, period,
                                     remaining - 1)
            moveable[label] = timer

    for op in script:
        if op[0] == "spawn":
            _, label, time = op
            sched.call_at(time, fire, label)
        elif op[0] == "periodic":
            _, label, period, n = op
            moveable[label] = sched.call_after(period, chain, label,
                                               period, n)
        elif op[0] == "move":
            _, label, time = op
            timer = moveable.get(label)
            if timer is None or not timer.active or time < sched.now:
                continue
            if use_fastpath:
                sched.reschedule(timer, time)
            else:
                timer.cancel()
                moveable[label] = sched.call_at(
                    time, timer.fn, *timer.args)
    sched.run()
    return log


def _random_script(seed):
    rng = random.Random(seed)
    script = []
    for i in range(rng.randint(3, 10)):
        script.append(("spawn", f"s{i}", round(rng.uniform(0, 5), 3)))
    for i in range(rng.randint(1, 4)):
        script.append(("periodic", f"p{i}",
                       round(rng.uniform(0.1, 1.0), 3),
                       rng.randint(1, 5)))
    for i in range(rng.randint(0, 6)):
        script.append(("move", f"p{i % 4}",
                       round(rng.uniform(0, 5), 3)))
    # Same-time collisions on purpose: several events at exactly t=2.0.
    for i in range(3):
        script.append(("spawn", f"tie{i}", 2.0))
    script.append(("move", "p0", 2.0))
    return script


@pytest.mark.parametrize("seed", range(12))
def test_reschedule_orders_exactly_like_cancel_and_recreate(seed):
    script = _random_script(seed)
    assert _twin_run(script, True) == _twin_run(script, False)


def test_reschedule_same_time_ties_break_at_move_time():
    # A timer moved to t=1.0 *after* another event was scheduled there
    # must fire second — the tie-break is drawn at move time, exactly
    # as cancel + call_at would.
    sched = Scheduler()
    log = []
    timer = sched.call_at(5.0, log.append, "moved")
    sched.call_at(1.0, log.append, "first")
    sched.reschedule(timer, 1.0)
    sched.call_at(1.0, log.append, "third")
    sched.run()
    assert log == ["first", "moved", "third"]


def test_reschedule_later_then_earlier_fires_once_at_final_time():
    sched = Scheduler()
    log = []
    timer = sched.call_at(1.0, log.append, "x")
    sched.reschedule(timer, 9.0)   # lazy move later
    sched.reschedule(timer, 4.0)   # immediate move earlier
    sched.call_at(4.0, log.append, "y")
    sched.run()
    assert log == ["x", "y"]
    assert sched.now == 4.0 if not log else True
    assert timer.fired and not timer.active


def test_rearm_after_equals_fresh_call_after():
    fast, slow = Scheduler(), Scheduler()
    fast_log, slow_log = [], []

    # Fast side: one timer rearmed per hop.  Slow side: a fresh timer
    # per hop.  Interleave a competitor event at every hop time.
    def fast_hop():
        fast_log.append(("hop", fast.now))

    state = {}

    def fast_driver(remaining):
        timer = state.get("t")
        if timer is None:
            state["t"] = fast.call_after(1.0, fast_hop)
        else:
            fast.rearm_after(timer, 1.0)
        fast.call_at(fast.now + 1.0, fast_log.append, ("rival", fast.now))
        if remaining:
            fast.call_after(1.0, fast_driver, remaining - 1)

    def slow_hop():
        slow_log.append(("hop", slow.now))

    def slow_driver(remaining):
        slow.call_after(1.0, slow_hop)
        slow.call_at(slow.now + 1.0, slow_log.append, ("rival", slow.now))
        if remaining:
            slow.call_after(1.0, slow_driver, remaining - 1)

    fast.call_soon(fast_driver, 5)
    slow.call_soon(slow_driver, 5)
    fast.run()
    slow.run()
    assert fast_log == slow_log
    assert [kind for kind, _ in fast_log[:2]] == ["hop", "rival"]


def test_rearm_requires_fired_timer():
    sched = Scheduler()
    timer = sched.call_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.rearm_after(timer, 1.0)
    sched.run()
    cancelled = sched.call_at(1.0, lambda: None)
    cancelled.cancel()
    with pytest.raises(SimulationError):
        sched.rearm_after(cancelled, 1.0)


def test_compaction_preserves_survivor_order_and_counts():
    sched = Scheduler()
    log = []
    keep = [sched.call_at(1.0, log.append, i) for i in range(10)]
    doomed = [sched.call_at(2.0, log.append, f"d{i}") for i in range(120)]
    # Move a survivor around so a lazily rescheduled entry is in the
    # queue when compaction rewrites it.
    sched.reschedule(keep[5], 3.0)
    sched.reschedule(keep[5], 1.0)
    for timer in doomed:
        timer.cancel()
    assert sched.queue_compactions >= 1
    # Compaction stops once the queue dips under the size floor, so a
    # tail of cancelled entries may linger — but the bulk must be gone.
    assert sched.pending_events < 64
    sched.run()
    assert [e for e in log if isinstance(e, int)] == \
        [0, 1, 2, 3, 4, 6, 7, 8, 9, 5]
    assert sched.timers_rescheduled == 2


def test_compaction_skips_small_queues():
    sched = Scheduler()
    timers = [sched.call_at(1.0, lambda: None) for _ in range(20)]
    for timer in timers:
        timer.cancel()
    assert sched.queue_compactions == 0
    sched.run()
    assert sched.events_processed == 0


def test_reschedule_counts_are_exported_via_metrics():
    from repro.obs import MetricsRegistry
    sched = Scheduler()
    registry = MetricsRegistry(clock=lambda: sched.now)
    sched.attach_metrics(registry)
    timer = sched.call_at(1.0, lambda: None)
    sched.reschedule(timer, 2.0)
    sched.reschedule_after(timer, 3.0)
    sched.run()
    assert registry.counter("sched.timers.rescheduled").value == 2
    assert registry.counter("sched.queue.compactions").value == 0
