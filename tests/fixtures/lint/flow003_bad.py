# reprolint: module=repro.iiop.giop
"""FLOW003 bad: an encoder whose output nothing can parse."""

import struct


def encode_ping(seq):
    return struct.pack(">I", seq)


def decode_ping(data):
    return struct.unpack(">I", data)[0]


def encode_orphan(flag):
    # No decode_orphan anywhere: peers cannot parse this shape.
    return b"\x01" if flag else b"\x00"


def roundtrip():
    return decode_ping(encode_ping(7)), encode_orphan(True)
