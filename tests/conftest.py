"""Pytest fixtures shared by the whole suite."""

import os
import pathlib
import re

import pytest

from repro import World


@pytest.fixture
def world():
    # The flight recorder is purely passive (no scheduler events, no
    # metrics), so arming it for every test changes nothing about the
    # run; on failure the hook below dumps the black box post-mortem.
    return World(seed=1234, flight=True)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On test failure, dump every armed flight recorder the test held.

    Worlds reachable through fixture arguments whose recorder is armed
    and non-empty are written as canonical JSON to ``$FLIGHT_DUMP_DIR``
    (default ``.flight/``); CI uploads the directory as an artifact.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    worlds = [(name, value)
              for name, value in sorted(getattr(item, "funcargs", {}).items())
              if isinstance(value, World)
              and value.flight.enabled and value.flight.recorded]
    if not worlds:
        return
    dump_dir = pathlib.Path(os.environ.get("FLIGHT_DUMP_DIR", ".flight"))
    dump_dir.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", item.nodeid)
    for name, value in worlds:
        path = dump_dir / f"{slug}--{name}.json"
        path.write_text(value.flight_json() + "\n", encoding="utf-8")
