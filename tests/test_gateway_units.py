"""Unit-level tests of gateway internals (bookkeeping, not scenarios)."""

import pytest

from repro import ReplicationStyle, World
from repro.core import UNUSED_CLIENT_ID
from repro.core.identifiers import external_operation_id
from repro.eternal.messages import DomainMessage, MsgKind
from repro.eternal.naming import GATEWAY_GROUP

from tests.helpers import external_client, make_counter_group, make_domain


def test_votes_for_plain_group_is_one(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    gateway = domain.gateways[0]
    assert gateway._votes_for(group.info()) == 1


def test_votes_for_voting_group_is_majority(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3)
    domain.await_ready(group)
    gateway = domain.gateways[0]
    assert gateway._votes_for(group.info()) == 2


def test_votes_shrink_with_live_replicas(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3, min_replicas=1)
    domain.await_ready(group)
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 0.5)
    gateway = domain.gateways[0]
    info = gateway.rm.registry.get(group.group_id)
    assert gateway._votes_for(info) == 2  # 2 live -> majority still 2


def test_connection_keeps_its_client_id_across_requests(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    world.await_promise(stub.call("increment", 1))
    ids = set(gateway._conn_ids.values())
    assert len(ids) == 1  # one connection, one id, however many requests


def test_live_gateway_hosts_falls_back_to_self(world):
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    # Before the gateway-group announce is applied, fall back to self.
    gateway.rm.registry.remove(GATEWAY_GROUP)
    assert gateway._live_gateway_hosts() == [gateway.host.name]


def test_forwarded_flag_set_when_invocation_observed(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    peer = domain.gateways[1]
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    world.run(until=world.now + 0.5)
    # The peer recorded the mirror and saw the forward in the total
    # order, so its copy is marked forwarded (no takeover needed).
    mirrored = [p for p in peer._pending.values()]
    assert all(p.forwarded for p in mirrored) or not mirrored


def test_unused_client_id_responses_never_reach_gateway_routing(world):
    """Intra-domain responses (UNUSED client id) target application
    groups, not the gateway group; the gateway must stay silent."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    # Driver-originated invocation: responses go to EXTERNAL, not gateway.
    world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.5)
    assert gateway.stats["responses_delivered"] == 0
    assert gateway.stats["responses_unexpected"] == 0


def test_gateway_index_partitions_counter_space(world):
    domain = make_domain(world, gateways=2)
    a, b = domain.gateways
    assert a.index != b.index
    # Counter ids from different gateways can never collide.
    id_a = a.index * 1_000_000 + 1
    id_b = b.index * 1_000_000 + 1
    assert id_a != id_b


def test_purge_client_clears_all_tables(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    world.run(until=world.now + 0.2)
    client_id = f"{layer.client_uid}#1"
    assert client_id in gateway._routing
    gateway._purge_client(client_id)
    assert client_id not in gateway._routing
    assert not any(k[0] == client_id for k in gateway._pending)
    assert not any(k[0] == client_id for k in gateway._cache)


def test_observe_delivered_ignores_unrelated_kinds(world):
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    before = dict(gateway.stats)
    gateway.observe_delivered(DomainMessage(
        kind=MsgKind.STATE_UPDATE, source_group=10, target_group=10,
        data={"state": {}, "upto_ts": 1}))
    assert gateway.stats == before


def test_stopping_gateway_closes_listener(world):
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    gateway.stop()
    state = {}
    host = world.add_host("probe")
    world.tcp.connect(host, (gateway.host.name, gateway.port),
                      lambda ep: state.setdefault("ok", ep),
                      lambda exc: state.setdefault("err", exc))
    world.scheduler.run_until(lambda: state)
    assert "err" in state
