"""The reprolint rule pack: this repo's invariants, as AST checks.

Each rule is deliberately *repo-aware* rather than generic: the scopes
(`DETERMINISTIC_PREFIXES`, `SIM_ONLY_PREFIXES`, `AUDIT_MODULES`) and
the sinks they protect come from how this reproduction is actually
built — everything under the deterministic prefixes runs inside
scheduler events and must be a pure function of the seed.  See
docs/STATIC_ANALYSIS.md for the catalogue, rationale, and the
suppression syntax; tests/fixtures/lint/ holds a good/bad snippet pair
for every rule.

The checks are intentionally syntactic (no type inference): they
over-approximate in places and rely on inline, justified suppressions
for the rare legitimate exception.  That trade is the point — a
determinism hazard that needs a human-written justification is visible
in review; one that silently rides in a `set` iteration is not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .lint import (LintContext, LintRule, ProjectContext, ProjectRule,
                   Violation)

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Attribute/Name chains; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported dotted origin, for both import forms."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted origin of an expression, via the imports."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically set-valued: displays, comprehensions, set()/
    frozenset() calls, and set-algebra over dict views."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return any(_is_view_call(side) or _is_set_expr(side)
                   for side in (node.left, node.right))
    return False


def _is_view_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "items", "values")
            and not node.args)


# ----------------------------------------------------------------------
# DET001 — wall-clock reads
# ----------------------------------------------------------------------

_WALL_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    "clock_gettime_ns",
})
_WALL_DATETIME_FNS = frozenset({
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(LintRule):
    """DET001: host-time reads outside the sanctioned boundary.

    Simulated code must read ``scheduler.now`` (or a metrics clock);
    the only legitimate host-time door is
    :mod:`repro.obs.hostclock`, which carries its own justified
    suppression.  Flags both calls *and* bare references (a default
    argument like ``clock=time.perf_counter`` smuggles the read just
    as effectively).
    """

    code = "DET001"
    name = "wall-clock-read"
    description = ("wall clock read on a simulated path; route through "
                   "repro.obs.hostclock")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_TIME_FNS:
                        yield ctx.violation(
                            self.code,
                            f"imports wall clock `time.{alias.name}`; "
                            "use repro.obs.hostclock.wall_clock", node)
            elif isinstance(node, ast.Attribute):
                origin = resolve(node, aliases)
                if origin is None:
                    continue
                if (origin.startswith("time.")
                        and origin.split(".", 1)[1] in _WALL_TIME_FNS):
                    yield ctx.violation(
                        self.code,
                        f"reads wall clock `{origin}`; simulated code must "
                        "use the scheduler clock (repro.obs.hostclock is "
                        "the only host-time boundary)", node)
                elif origin in _WALL_DATETIME_FNS or (
                        origin.startswith("datetime.")
                        and origin.split(".")[-1] in ("now", "utcnow", "today")):
                    yield ctx.violation(
                        self.code,
                        f"reads calendar clock `{origin}`; timestamps on "
                        "simulated paths must derive from scheduler.now",
                        node)


# ----------------------------------------------------------------------
# DET002 — ambient randomness
# ----------------------------------------------------------------------

_RANDOM_OK = frozenset({"Random"})
_ENTROPY_ORIGINS = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})


class AmbientRandomRule(LintRule):
    """DET002: module-level ``random`` (or other ambient entropy).

    The World owns the one seeded RNG (``world.rng``); drawing from the
    shared ``random`` module's implicit global state — or from real
    entropy (``os.urandom``, ``uuid.uuid4``, ``random.SystemRandom``)
    — silently breaks seed-reproducibility.  Constructing an explicit
    ``random.Random(seed)`` is the sanctioned pattern and is allowed.
    """

    code = "DET002"
    name = "ambient-random"
    description = ("ambient randomness instead of the World's seeded "
                   "random.Random")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_OK:
                        yield ctx.violation(
                            self.code,
                            f"imports `random.{alias.name}` (module-global "
                            "RNG state); use the World's seeded "
                            "random.Random instance", node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    target = (f"{node.module}.{alias.name}"
                              if isinstance(node, ast.ImportFrom)
                              else alias.name)
                    if target == "secrets" or target.startswith("secrets."):
                        yield ctx.violation(
                            self.code,
                            "imports `secrets` (real entropy); seeded "
                            "scenarios cannot reproduce it", node)
            elif isinstance(node, ast.Attribute):
                origin = resolve(node, aliases)
                if origin is None:
                    continue
                if (origin.startswith("random.")
                        and origin.split(".", 1)[1] not in _RANDOM_OK):
                    yield ctx.violation(
                        self.code,
                        f"uses `{origin}` (module-global RNG state); draw "
                        "from the World's seeded random.Random instead",
                        node)
                elif origin in _ENTROPY_ORIGINS:
                    yield ctx.violation(
                        self.code,
                        f"uses `{origin}` (real entropy); seeded scenarios "
                        "cannot reproduce it", node)


# ----------------------------------------------------------------------
# DET003 — unsorted set iteration
# ----------------------------------------------------------------------


class UnsortedSetIterationRule(LintRule):
    """DET003: iteration order of a ``set`` reaching deterministic code.

    CPython set iteration order depends on insertion history *and*
    element hashes (which, for str, vary per process unless hash
    randomisation is pinned).  Inside the deterministic packages any
    set iteration can leak that order into event scheduling or wire
    bytes, so all of them must go through ``sorted(...)``.  The check
    is scope-based (no flow analysis): it flags ``for``/comprehension
    iteration, ``list()``/``tuple()`` materialisation, and
    ``.join(...)`` over syntactic sets, set-typed locals, and
    set-algebra over dict views.
    """

    code = "DET003"
    name = "unsorted-set-iteration"
    description = ("unordered set iteration in a deterministic module; "
                   "wrap in sorted(...)")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(ctx.config.deterministic_prefixes):
            return
        # Name tracking is per lexical scope: a `live = set(...)` in one
        # method must not taint an unrelated list called `live` in
        # another.  Each function (and the module body) is scanned with
        # its own name table, without descending into nested scopes.
        for scope in self._scopes(ctx.tree):
            nodes = list(self._scope_walk(scope))
            set_locals: Set[str] = set()
            for node in nodes:
                if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_locals.add(target.id)
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None
                        and _is_set_expr(node.value)
                        and isinstance(node.target, ast.Name)):
                    set_locals.add(node.target.id)

            def is_set_like(expr: ast.AST) -> bool:
                if _is_set_expr(expr):
                    return True
                return isinstance(expr, ast.Name) and expr.id in set_locals

            for node in nodes:
                iters: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                elif isinstance(node, ast.Call):
                    if (isinstance(node.func, ast.Name)
                            and node.func.id in ("list", "tuple", "enumerate")
                            and node.args):
                        iters.append(node.args[0])
                    elif (isinstance(node.func, ast.Attribute)
                            and node.func.attr == "join" and node.args):
                        iters.append(node.args[0])
                for candidate in iters:
                    if is_set_like(candidate):
                        yield ctx.violation(
                            self.code,
                            "iterates a set in undefined order inside a "
                            "deterministic module; wrap in sorted(...)",
                            candidate)

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield node

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """All nodes of one lexical scope, excluding nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# DET004 — object identity in protocol state
# ----------------------------------------------------------------------


class ObjectIdentityRule(LintRule):
    """DET004: ``id()`` / ``hash()`` values inside deterministic code.

    ``id()`` is an address and ``hash()`` of str/bytes is salted per
    process: neither survives a re-run, so neither may reach protocol
    output, tie-breaks, or anything a golden records.  The rule flags
    every call in the deterministic packages; the rare legitimate use
    (e.g. *same-process* servant-identity bookkeeping that is never
    serialized) carries an inline justified suppression.
    """

    code = "DET004"
    name = "object-identity"
    description = ("id()/hash() in a deterministic module leaks "
                   "per-process values")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(ctx.config.deterministic_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in ("id", "hash")):
                yield ctx.violation(
                    self.code,
                    f"`{node.func.id}()` is per-process (addresses / salted "
                    "hashes); deterministic state must use stable "
                    "identifiers", node)


# ----------------------------------------------------------------------
# SIM001 — host blocking / concurrency in sim-driven modules
# ----------------------------------------------------------------------

_BLOCKING_MODULES = frozenset({
    "threading", "_thread", "socket", "socketserver", "selectors",
    "select", "subprocess", "multiprocessing", "asyncio", "concurrent",
    "queue", "ssl", "signal",
})
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "os.fork", "os.wait",
})


class SimDisciplineRule(LintRule):
    """SIM001: real I/O, threads, or sleeps inside sim-driven modules.

    Everything under the sim-only prefixes runs inside scheduler
    events: a real ``sleep`` stalls the whole universe, a thread races
    it, and a socket bypasses the simulated network (and its fault
    injection) entirely.  Host-side concerns belong in tools/,
    benchmarks/, or behind an injected boundary.
    """

    code = "SIM001"
    name = "sim-discipline"
    description = ("blocking I/O / threads / sleep inside a sim-driven "
                   "module")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(ctx.config.sim_only_prefixes):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    base = (node.module if isinstance(node, ast.ImportFrom)
                            and node.module else alias.name)
                    root = (base or "").split(".")[0]
                    if root in _BLOCKING_MODULES:
                        yield ctx.violation(
                            self.code,
                            f"imports `{root}` in a sim-driven module; all "
                            "I/O and concurrency must run on the simulated "
                            "scheduler", node)
            elif isinstance(node, ast.Call):
                origin = resolve(node.func, aliases)
                if origin in _BLOCKING_CALLS:
                    yield ctx.violation(
                        self.code,
                        f"calls `{origin}` in a sim-driven module; use "
                        "scheduler.call_after for delays", node)
                elif (isinstance(node.func, ast.Name)
                        and node.func.id in ("open", "input")):
                    yield ctx.violation(
                        self.code,
                        f"calls `{node.func.id}()` in a sim-driven module; "
                        "host I/O belongs in tools/ or an injected "
                        "boundary", node)


# ----------------------------------------------------------------------
# OBS001 — uncatalogued metric / span names
# ----------------------------------------------------------------------

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer",
                               "span"})
_SPAN_EMITTERS = frozenset({"start", "instant"})
# Time-series emitters (SeriesRegistry.observe/.sample/.series) and the
# flight recorder (FlightRecorder.record): the first argument is the
# series name / event kind.  Only dotted string literals are checked —
# Histogram.observe(0.25) and other same-named methods pass floats or
# undotted strings and fall through.
_SERIES_EMITTERS = frozenset({"observe", "sample", "series", "record"})


class CatalogueRule(LintRule):
    """OBS001: metric/span names emitted in code but absent from
    docs/OBSERVABILITY.md.

    The catalogue is the contract dashboards and tests are written
    against; an undocumented series is invisible operational surface.
    Checked emitters: ``MetricsRegistry.counter/gauge/histogram/
    timer/span`` first arguments, ``AuditScope.register(gauge=...)``
    names, ``TraceCollector.start/instant`` span names,
    ``SeriesRegistry.observe/sample/series`` time-series names, and
    ``FlightRecorder.record`` event kinds (both only when the literal
    is dotted, which filters out the same-named histogram/race-recorder
    methods).  Dynamic (non-literal) names are out of scope — they must
    be catalogued as a backticked ``family.*`` wildcard instead.
    """

    code = "OBS001"
    name = "uncatalogued-series"
    description = ("metric/span name missing from the "
                   "docs/OBSERVABILITY.md catalogue")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.config.catalogue_names is None:
            return
        if not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            names: List[Tuple[str, ast.AST]] = []
            if attr in _METRIC_FACTORIES and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                        first.value, str):
                    names.append((first.value, first))
            elif attr in _SPAN_EMITTERS and len(node.args) >= 2:
                second = node.args[1]
                if (isinstance(second, ast.Constant)
                        and isinstance(second.value, str)
                        and "." in second.value):
                    names.append((second.value, second))
            elif attr in _SERIES_EMITTERS and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)
                        and "." in first.value):
                    names.append((first.value, first))
            if attr in ("register",):
                for keyword in node.keywords:
                    if (keyword.arg == "gauge"
                            and isinstance(keyword.value, ast.Constant)
                            and isinstance(keyword.value.value, str)):
                        names.append((keyword.value.value, keyword.value))
            for name, anchor in names:
                if not ctx.config.catalogued(name):
                    yield ctx.violation(
                        self.code,
                        f"series `{name}` is not in the observability "
                        "catalogue "
                        f"({ctx.config.catalogue_source or 'docs/OBSERVABILITY.md'})",
                        anchor)


# ----------------------------------------------------------------------
# AUD001 — unregistered stateful collections
# ----------------------------------------------------------------------

_CONTAINER_CALLS = frozenset({
    "dict", "list", "set", "frozenset", "deque", "OrderedDict",
    "defaultdict", "Counter",
})


def _is_container_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _CONTAINER_CALLS:
            return True
    return False


class AuditRegistrationRule(LintRule):
    """AUD001: a stateful collection that the resource audit can't see.

    PR 3's leak audit only works if *every* stateful collection in the
    gateway/RM layer is registered with the world's ``AuditScope``.
    For each class in the audited modules that registers at least one
    collection, every ``self.X = {}/[]/set()/deque()...`` must be
    referenced from some ``register(...)``/``register_audit(...)``
    call in that class — a new table silently added next to the
    registered ones is exactly the regression PR 3 existed to stop.
    """

    code = "AUD001"
    name = "unaudited-collection"
    description = ("stateful collection not registered with "
                   "repro.obs.audit")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.module not in ctx.config.audit_modules:
            return
        for klass in [n for n in ctx.tree.body
                      if isinstance(n, ast.ClassDef)]:
            registered_refs: Set[str] = set()
            register_calls = 0
            for node in ast.walk(klass):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("register", "register_audit")):
                    register_calls += 1
                    for sub in ast.walk(node):
                        if (isinstance(sub, ast.Attribute)
                                and isinstance(sub.value, ast.Name)
                                and sub.value.id == "self"):
                            registered_refs.add(sub.attr)
            if register_calls == 0:
                continue
            seen: Set[str] = set()
            for node in ast.walk(klass):
                target: Optional[ast.Attribute] = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    maybe = node.targets[0]
                    if isinstance(maybe, ast.Attribute):
                        target, value = maybe, node.value
                elif (isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Attribute)):
                    target, value = node.target, node.value
                if (target is None or value is None
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"):
                    continue
                attr = target.attr
                if attr in seen or not _is_container_expr(value):
                    continue
                seen.add(attr)
                if attr not in registered_refs:
                    yield ctx.violation(
                        self.code,
                        f"stateful collection `self.{attr}` in "
                        f"`{klass.name}` is never referenced by an audit "
                        "register(...) call; declare its quiescence floor "
                        "(repro.obs.audit) or justify a suppression",
                        target)


# ----------------------------------------------------------------------
# EXC001 — swallowed exceptions on scheduler-callback paths
# ----------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    probe = handler.type
    if probe is None:
        return True
    candidates = probe.elts if isinstance(probe, ast.Tuple) else [probe]
    return any(isinstance(c, ast.Name) and c.id in _BROAD_EXCEPTIONS
               for c in candidates)


def _handler_reacts(body: List[ast.stmt]) -> bool:
    """Does the handler do *anything* with the failure — re-raise, call
    something (a metric, a logger, a fail-the-op hook), return a value,
    or record state?  Pure swallows (pass / bare return / continue) and
    docstring-only bodies do none of these."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call, ast.AugAssign,
                                 ast.Assign)):
                return True
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                return True
            if isinstance(node, ast.Return) and node.value is not None:
                if not (isinstance(node.value, ast.Constant)
                        and node.value.value is None):
                    return True
    return False


class SwallowedExceptionRule(LintRule):
    """EXC001: a broad ``except`` on a sim-driven path that swallows.

    Everything under the sim-only prefixes runs as scheduler callbacks:
    an exception silently dropped there doesn't crash a request, it
    silently corrupts a replica's state relative to its peers (the
    exact divergence the paper's deterministic-execution requirement
    exists to prevent) — and no log, metric, or failed op ever points
    at it.  A broad handler must re-raise, record a metric/state, call
    a failure hook, or return a substitute value; ``pass`` needs a
    justified suppression explaining why ignoring is correct.
    """

    code = "EXC001"
    name = "swallowed-exception"
    description = ("broad except on a scheduler-callback path swallows "
                   "the failure")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(ctx.config.sim_only_prefixes):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _handler_reacts(node.body):
                continue
            yield ctx.violation(
                self.code,
                "broad except swallows the failure on a sim-driven "
                "path; re-raise, record a metric/state change, or fail "
                "the pending op", node)


# ----------------------------------------------------------------------
# SM001 — state-machine dispatch exhaustiveness
# ----------------------------------------------------------------------

def _uppercase_assigns(node: ast.ClassDef) -> List[Tuple[str, ast.Assign]]:
    found: List[Tuple[str, ast.Assign]] = []
    for item in node.body:
        if (isinstance(item, ast.Assign) and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id.isupper()):
            found.append((item.targets[0].id, item))
    return found


def _enum_state_members(node: ast.ClassDef) -> List[str]:
    is_enum = any(
        (isinstance(b, ast.Name) and b.id.endswith("Enum"))
        or (isinstance(b, ast.Attribute) and b.attr.endswith("Enum"))
        for b in node.bases)
    if not is_enum:
        return []
    return [name for name, _ in _uppercase_assigns(node)]


def _str_constant_state_members(node: ast.ClassDef) -> List[str]:
    """The repo's plain-class state convention: >=2 UPPERCASE attrs
    whose values are the lowercased attr name (``CLOSED = "closed"``).
    Matches CircuitBreaker / Totem membership states / execution
    outcomes, and automatically picks up the next state added."""
    members = [name for name, item in _uppercase_assigns(node)
               if isinstance(item.value, ast.Constant)
               and item.value.value == name.lower()]
    return members if len(members) >= 2 else []


def state_classes(project: ProjectContext) -> Dict[str, Tuple[str, ...]]:
    """Class name -> state members, discovered across the linted set."""
    def build() -> Dict[str, Tuple[str, ...]]:
        found: Dict[str, Set[str]] = {}
        for ctx in project.contexts:
            for node in ctx.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                members = (_enum_state_members(node)
                           or _str_constant_state_members(node))
                if len(members) >= 2:
                    found.setdefault(node.name, set()).update(members)
        return {name: tuple(sorted(m)) for name, m in found.items()}
    return project.cached("sm001.state_classes", build)


def _holder_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _member_ref(node: ast.AST, classes: Dict[str, Tuple[str, ...]]
                ) -> Optional[Tuple[str, str]]:
    """(class name, member) if ``node`` is ``StateClass.MEMBER``."""
    if not isinstance(node, ast.Attribute):
        return None
    holder = _holder_name(node.value)
    if holder is None or holder not in classes:
        return None
    if node.attr in classes[holder]:
        return holder, node.attr
    return None


def _member_tests(test: ast.AST, classes: Dict[str, Tuple[str, ...]]
                  ) -> Dict[Tuple[str, str], Set[str]]:
    """(class, subject) -> members positively tested in one branch
    condition.  Subject is the ast dump of the compared expression, so
    ``kind is MsgKind.A`` and ``kind is MsgKind.B`` in different
    branches group into one dispatch over ``kind``."""
    hits: Dict[Tuple[str, str], Set[str]] = {}
    for node in ast.walk(test if isinstance(test, ast.AST) else ast.Pass()):
        if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                and len(node.comparators) == 1):
            continue
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if isinstance(op, (ast.Is, ast.Eq)):
            for member_side, subject_side in ((left, right), (right, left)):
                ref = _member_ref(member_side, classes)
                if ref is not None:
                    cls, member = ref
                    key = (cls, ast.dump(subject_side))
                    hits.setdefault(key, set()).add(member)
                    break
        elif isinstance(op, ast.In) and isinstance(
                right, (ast.Tuple, ast.List, ast.Set)):
            for element in right.elts:
                ref = _member_ref(element, classes)
                if ref is not None:
                    cls, member = ref
                    key = (cls, ast.dump(left))
                    hits.setdefault(key, set()).add(member)
    return hits


def _flatten_chain(head: ast.If) -> Tuple[List[ast.expr], bool, Set[int]]:
    """Flatten an if/elif chain; ``elif`` is an ``If`` as the sole
    ``orelse`` statement at the head's indentation (a nested ``else:
    if ...:`` sits deeper and is treated as an explicit default)."""
    tests: List[ast.expr] = [head.test]
    consumed: Set[int] = set()
    node = head
    while (len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If)
            and node.orelse[0].col_offset == head.col_offset):
        node = node.orelse[0]
        consumed.add(id(node))
        tests.append(node.test)
    return tests, bool(node.orelse), consumed


class StateMachineExhaustivenessRule(ProjectRule):
    """SM001: a dispatch over a state machine must cover every state.

    Applies to two dispatch shapes, wherever the subject expression is
    compared against members of a discovered state class (an enum, or
    the ``CLOSED = "closed"`` plain-class convention):

    * an ``if/elif`` chain with >= 2 branches over the same subject —
      must test every member or carry an explicit ``else``;
    * a dict-dispatch display with >= 2 state-member keys and handler
      (callable) values — must key every member.

    The point is the *next* state: adding a ``ReplicationStyle``, a
    breaker state, or a ``MsgKind`` makes every non-exhaustive
    dispatch fail lint instead of silently falling through.
    """

    code = "SM001"
    name = "state-dispatch-exhaustiveness"
    description = ("if/elif or dict dispatch over a state class misses "
                   "members and has no default")

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        classes = state_classes(project)
        if not classes:
            return
        for ctx in project.contexts:
            yield from self._check_file(ctx, classes)

    def _check_file(self, ctx: LintContext,
                    classes: Dict[str, Tuple[str, ...]]
                    ) -> Iterator[Violation]:
        consumed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and id(node) not in consumed:
                tests, has_else, eaten = _flatten_chain(node)
                consumed |= eaten
                if not has_else:
                    yield from self._check_chain(ctx, node, tests, classes)
            elif isinstance(node, ast.Dict):
                yield from self._check_table(ctx, node, classes)

    def _check_chain(self, ctx: LintContext, head: ast.If,
                     tests: List[ast.expr],
                     classes: Dict[str, Tuple[str, ...]]
                     ) -> Iterator[Violation]:
        covered: Dict[Tuple[str, str], Set[str]] = {}
        branches: Dict[Tuple[str, str], int] = {}
        for test in tests:
            for key, members in _member_tests(test, classes).items():
                covered.setdefault(key, set()).update(members)
                branches[key] = branches.get(key, 0) + 1
        for (cls, _subject), members in sorted(covered.items()):
            if branches[(cls, _subject)] < 2:
                continue
            missing = sorted(set(classes[cls]) - members)
            if missing:
                yield ctx.violation(
                    self.code,
                    f"if/elif dispatch over `{cls}` misses "
                    f"{', '.join(missing)} and has no else; cover every "
                    "state or add an explicit default", head)

    def _check_table(self, ctx: LintContext, table: ast.Dict,
                     classes: Dict[str, Tuple[str, ...]]
                     ) -> Iterator[Violation]:
        if not table.keys or not all(
                isinstance(v, (ast.Name, ast.Attribute, ast.Lambda))
                for v in table.values):
            return
        keyed: Dict[str, Set[str]] = {}
        for key in table.keys:
            if key is None:
                return  # **splat merge: coverage is not statically known
            ref = _member_ref(key, classes)
            if ref is None:
                return  # mixed / non-state keys: not a state dispatch
            keyed.setdefault(ref[0], set()).add(ref[1])
        for cls, members in sorted(keyed.items()):
            if len(members) < 2:
                continue
            missing = sorted(set(classes[cls]) - members)
            if missing:
                yield ctx.violation(
                    self.code,
                    f"dict dispatch over `{cls}` misses "
                    f"{', '.join(missing)}; a handler table must key "
                    "every state", table)
