"""Tests for IIOP connection machinery details."""

import pytest

from repro import CommFailure, Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.iiop import encode_close_connection
from repro.orb.connection import IiopClientConnection


def make_server(world, port=9000):
    host = world.add_host("server")
    orb = Orb(world, host)
    orb.listen(port)
    ior = orb.activate_object(CounterServant())
    return orb, ior


def test_requests_queued_while_connecting(world):
    """send_request before the TCP handshake completes must not lose
    the request: it is queued and flushed on connect."""
    server_orb, ior = make_server(world)
    client_host = world.add_host("client")
    client_orb = Orb(world, client_host, request_timeout=None)
    stub = client_orb.string_to_object(ior.to_string(), COUNTER_INTERFACE)
    # Two invocations back-to-back, before any connection exists.
    p1 = stub.call("increment", 1)
    p2 = stub.call("increment", 1)
    world.run_until_done([p1, p2])
    assert (p1.result(), p2.result()) == (1, 2)


def test_close_connection_message_fails_pending(world):
    """A GIOP CloseConnection from the server ends the connection and
    fails outstanding requests with COMM_FAILURE."""
    server_host = world.add_host("server")
    # A raw listener that answers every connection with CloseConnection.
    def on_accept(endpoint):
        endpoint.send(encode_close_connection())
    world.tcp.listen(server_host, 9000, on_accept)

    client_host = world.add_host("client")
    connection = IiopClientConnection(world.tcp, client_host,
                                      ("server", 9000))
    failures = []
    connection.send_request(b"GIOP" + bytes(8), 1,
                            lambda reply: failures.append("reply"),
                            lambda exc: failures.append(type(exc).__name__))
    world.run(until=world.now + 1.0)
    assert failures == ["CommFailure"]
    assert not connection.usable


def test_local_close_fails_pending(world):
    server_orb, ior = make_server(world)
    client_host = world.add_host("client")
    connection = IiopClientConnection(world.tcp, client_host,
                                      ("server", 9000))
    failures = []
    connection.send_request(b"\x00" * 12, 1, lambda r: None,
                            lambda exc: failures.append(exc))
    connection.close()
    assert len(failures) == 1
    assert isinstance(failures[0], CommFailure)


def test_closed_listener_notifies_closed_hook(world):
    server_orb, ior = make_server(world)
    client_host = world.add_host("client")
    connection = IiopClientConnection(world.tcp, client_host,
                                      ("server", 9000))
    observed = []
    connection.on_closed(lambda: observed.append(True))
    world.run(until=world.now + 0.5)
    world.network.host("server").crash()
    world.run(until=world.now + 0.5)
    assert observed == [True]


def test_send_after_failure_rejects_immediately(world):
    world.add_host("nowhere")  # never listens
    client_host = world.add_host("client")
    connection = IiopClientConnection(world.tcp, client_host,
                                      ("nowhere", 1))
    world.run(until=world.now + 0.5)  # connect refused
    failures = []
    connection.send_request(b"x", 1, lambda r: None,
                            lambda exc: failures.append(exc))
    assert failures and isinstance(failures[0], CommFailure)


def test_listen_twice_rejected(world):
    from repro.errors import ConfigurationError
    host = world.add_host("server")
    orb = Orb(world, host)
    orb.listen(9000)
    with pytest.raises(ConfigurationError):
        orb.listen(9001)


def test_activate_before_listen_rejected(world):
    from repro.errors import ConfigurationError
    host = world.add_host("server")
    orb = Orb(world, host)
    with pytest.raises(ConfigurationError):
        orb.activate_object(CounterServant())


def test_port_conflict_between_orbs_rejected(world):
    from repro.errors import ConfigurationError
    host = world.add_host("server")
    orb_a = Orb(world, host, name="a")
    orb_a.listen(9000)
    orb_b = Orb(world, host, name="b")
    with pytest.raises(ConfigurationError):
        orb_b.listen(9000)
