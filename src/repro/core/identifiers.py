"""Invocation, response, and operation identifiers (paper Figure 6).

Eternal detects and suppresses duplicate invocations and duplicate
responses using identifiers built from the totally-ordered message
sequence numbers ("timestamps") assigned by Totem:

* an **operation identifier** ``(T_parent_inv, S_child)`` uniquely names
  one invocation/response pair: ``T_parent_inv`` is the timestamp of the
  message that carried the *parent* invocation into the invoking group,
  and ``S_child`` is the index of this nested invocation within the
  parent operation.  Because the parent timestamp is system-wide unique
  (total order) and every replica of the invoking group counts child
  invocations identically (deterministic execution), every replica
  derives the *same* operation identifier — which is precisely what
  makes duplicates recognisable.
* an **invocation identifier** ``(T_inv, (T_parent_inv, S_child))`` adds
  the timestamp of the message carrying this invocation itself;
* a **response identifier** ``(T_res, (T_parent_inv, S_child))`` adds
  the timestamp of the message carrying the response.

Invocations that originate *outside* the fault tolerance domain (from
unreplicated clients via a gateway) have no parent message; their
operation identifiers use ``parent_ts = EXTERNAL_PARENT_TS`` (0) and the
per-client request sequence as ``S_child``.  Uniqueness is then supplied
by the deduplication key, which — following section 3.2 of the paper —
combines the source group identifier, the TCP client identifier, and
the operation identifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

# Parent timestamp used for operations that enter the domain from outside
# (no parent invocation message exists).
EXTERNAL_PARENT_TS = 0

# The client-id wildcard used on messages between replicated objects
# within the fault tolerance domain ("some unused value" in Figure 4).
# Enhanced clients use string identifiers; gateway-assigned counters are
# small ints; this sentinel collides with neither.
UNUSED_CLIENT_ID: int = 0xFFFFFFFF

ClientId = Union[int, str]


@dataclass(frozen=True)
class OperationId:
    """(T_parent_inv, S_child): uniquely names an invocation/response pair."""

    parent_ts: int
    child_seq: int

    def __str__(self) -> str:
        return f"op({self.parent_ts},{self.child_seq})"


@dataclass(frozen=True)
class InvocationId:
    """(T_inv, operation id) — stamped when the invocation is delivered."""

    ts: int
    op: OperationId

    def __str__(self) -> str:
        return f"inv[{self.ts},{self.op}]"


@dataclass(frozen=True)
class ResponseId:
    """(T_res, operation id) — stamped when the response is delivered."""

    ts: int
    op: OperationId

    def __str__(self) -> str:
        return f"res[{self.ts},{self.op}]"


# The deduplication key of section 3.2: destination routing and duplicate
# detection use the source group id, the TCP client id and the operation
# identifier collectively.
DedupKey = Tuple[int, ClientId, OperationId]


def dedup_key(source_group: int, client_id: ClientId,
              op: OperationId) -> DedupKey:
    """Build the (source group, client id, operation id) dedup key."""
    return (source_group, client_id, op)


def external_operation_id(request_seq: int) -> OperationId:
    """Operation id for a top-level invocation arriving from outside the
    domain: no parent message, sequenced by the client's request number."""
    return OperationId(EXTERNAL_PARENT_TS, request_seq)
